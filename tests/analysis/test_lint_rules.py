"""Every lint rule against its fixtures: detect, suppress, clean."""

from __future__ import annotations

import os
import shutil

import pytest

from repro.analysis.lint import Project, run_lint
from repro.analysis.lint_rules import (
    FAST_PATHS,
    NUMBERS_AFFECTING_FIELDS,
    all_checkers,
)

REPO_ROOT = os.path.abspath(
    os.path.join(os.path.dirname(__file__), "..", "..")
)
FIXTURES = "tests/analysis/fixtures"
RULES = {checker.rule_id: checker for checker in all_checkers()}


def lint_fixture(rule_id, kind):
    rel = f"{FIXTURES}/r{rule_id[1]}_{kind}.py"
    assert os.path.isfile(os.path.join(REPO_ROOT, rel)), rel
    return run_lint(REPO_ROOT, files=[rel], rules=[RULES[rule_id]])


class TestRuleRegistry:
    def test_at_least_six_rules(self):
        assert len(RULES) >= 6

    def test_rule_ids_unique_and_documented(self):
        assert sorted(RULES) == ["R1", "R2", "R3", "R4", "R5", "R6"]
        for checker in RULES.values():
            assert checker.name != "unnamed"
            assert checker.description


@pytest.mark.parametrize("rule_id", ["R2", "R3", "R4", "R5", "R6"])
class TestFixtureTriples:
    def test_clean_fixture_passes(self, rule_id):
        assert lint_fixture(rule_id, "clean") == []

    def test_suppressed_fixture_passes(self, rule_id):
        assert lint_fixture(rule_id, "suppressed") == []

    def test_bad_fixture_reports_under_this_rule(self, rule_id):
        findings = lint_fixture(rule_id, "bad")
        assert findings
        assert {item.rule for item in findings} == {rule_id}


class TestTaskKeyHygieneRule:
    def test_bad_lines_and_messages(self):
        findings = lint_fixture("R2", "bad")
        assert [(item.line, item.col) for item in findings] == [
            (21, 4), (32, 4), (34, 4),
        ]
        both, unclassified, unknown = findings
        assert "model_seed" in both.message
        assert "exactly one" in both.message
        assert "frobnicate_strength" in unclassified.message
        assert "unclassified" in unclassified.message
        assert "chunk_hint" in unknown.message
        assert "not an ExperimentConfig field" in unknown.message

    def test_allowlist_matches_real_config(self):
        """The rule's allowlist is live: drop a field and R2 fires."""
        import dataclasses

        from repro.experiments.common import ExperimentConfig

        declared = {f.name for f in dataclasses.fields(ExperimentConfig)}
        assert NUMBERS_AFFECTING_FIELDS <= declared


class TestWorkerSeedingRule:
    def test_bad_lines(self):
        findings = lint_fixture("R3", "bad")
        assert [item.line for item in findings] == [8, 12, 16, 17, 21]

    def test_messages_name_the_offence(self):
        findings = lint_fixture("R3", "bad")
        assert "unseeded default_rng()" in findings[0].message
        assert "np.random.seed()" in findings[2].message
        assert "np.random.rand()" in findings[3].message
        assert "np.random.shuffle()" in findings[4].message


class TestPlanKernelAllocationRule:
    def test_bad_lines(self):
        findings = lint_fixture("R4", "bad")
        assert [item.line for item in findings] == [15, 16, 18, 33]

    def test_messages_distinguish_alloc_kinds(self):
        findings = lint_fixture("R4", "bad")
        assert "np.zeros() allocates" in findings[0].message
        assert ".astype() copies" in findings[1].message
        assert "np.maximum() without out=" in findings[2].message
        assert "np.matmul() without out=" in findings[3].message


class TestShmLifetimeRule:
    def test_bad_lines(self):
        findings = lint_fixture("R5", "bad")
        assert [item.line for item in findings] == [7, 12]

    def test_messages_name_both_creation_forms(self):
        findings = lint_fixture("R5", "bad")
        assert "SharedMemory(create=True)" in findings[0].message
        assert "create_stack()" in findings[1].message
        for item in findings:
            assert "leaks /dev/shm" in item.message


class TestEnvelopeWireSafetyRule:
    def test_bad_lines(self):
        findings = lint_fixture("R6", "bad")
        assert [item.line for item in findings] == [12, 18, 22, 28]

    def test_messages(self):
        findings = lint_fixture("R6", "bad")
        assert "bare caught exception 'error'" in findings[0].message
        assert "keyword arguments only" in findings[1].message
        assert "computed key" in findings[2].message
        assert "computed key" in findings[3].message


class TestParityReferenceRule:
    """R1 runs over a whole project tree, so it gets tmp_path copies."""

    GOOD_TREE = os.path.join(REPO_ROOT, FIXTURES, "r1_project")

    @pytest.fixture()
    def tree(self, tmp_path):
        dst = str(tmp_path / "proj")
        shutil.copytree(self.GOOD_TREE, dst)
        return dst

    @staticmethod
    def _check(root):
        return list(RULES["R1"].check_project(Project(root)))

    @staticmethod
    def _rewrite(root, relpath, old, new):
        path = os.path.join(root, relpath)
        with open(path, "r", encoding="utf-8") as handle:
            source = handle.read()
        assert old in source
        with open(path, "w", encoding="utf-8") as handle:
            handle.write(source.replace(old, new))

    def test_declared_fast_paths_cover_the_repo(self):
        keys = [spec.key for spec in FAST_PATHS]
        assert keys == [
            "fsm-decode", "entropy-code", "inference-plan", "im2col",
        ]

    def test_intact_tree_is_clean(self, tree):
        assert self._check(tree) == []

    def test_real_repo_satisfies_r1(self):
        assert self._check(REPO_ROOT) == []

    def test_missing_fast_module(self, tree):
        os.remove(os.path.join(tree, "src/repro/jpeg/fsm_decode.py"))
        findings = self._check(tree)
        assert [item.path for item in findings] == [
            "src/repro/jpeg/fsm_decode.py"
        ]
        assert "declared fast-path module is missing" in findings[0].message

    def test_renamed_fast_symbol(self, tree):
        self._rewrite(
            tree, "src/repro/nn/im2col.py",
            "def im2col(", "def im2col_vectorized(",
        )
        findings = self._check(tree)
        assert len(findings) == 1
        assert "'im2col' is no longer defined here" in findings[0].message

    def test_deleted_reference_symbol(self, tree):
        self._rewrite(
            tree, "src/repro/jpeg/codec.py",
            "def decode_to_zigzag_walk(", "def decode_to_zigzag_gone(",
        )
        findings = self._check(tree)
        assert len(findings) == 1
        assert "parity is sacred" in findings[0].message
        assert "decode_to_zigzag_walk" in findings[0].message

    def test_deleted_parity_test(self, tree):
        os.remove(os.path.join(tree, "tests/test_parity.py"))
        findings = self._check(tree)
        assert len(findings) == len(FAST_PATHS)
        for item in findings:
            assert "add or restore the parity test" in item.message


class TestRepoSelfLint:
    def test_whole_repo_is_clean_under_all_rules(self):
        assert run_lint(REPO_ROOT, strict=True) == []
