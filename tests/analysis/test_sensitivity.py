"""Tests for the Eq. 2 gradient-based band saliency."""

import numpy as np
import pytest

from repro.analysis.sensitivity import frequency_band_saliency, input_gradient
from repro.data.transforms import prepare_for_network
from repro.nn import models


@pytest.fixture(scope="module")
def small_classifier():
    return models.alexnet_mini(num_classes=4, input_shape=(1, 16, 16), seed=0,
                               base_channels=6)


class TestInputGradient:
    def test_shape_matches_input(self, small_classifier, rng):
        inputs = rng.normal(size=(3, 1, 16, 16))
        gradient = input_gradient(small_classifier, inputs, np.array([0, 1, 2]))
        assert gradient.shape == inputs.shape
        assert np.isfinite(gradient).all()

    def test_gradient_is_nonzero(self, small_classifier, rng):
        inputs = rng.normal(size=(2, 1, 16, 16))
        gradient = input_gradient(small_classifier, inputs, np.array([0, 3]))
        assert np.abs(gradient).max() > 0.0

    def test_rejects_mismatched_targets(self, small_classifier, rng):
        with pytest.raises(ValueError):
            input_gradient(
                small_classifier, rng.normal(size=(2, 1, 16, 16)), np.array([0])
            )


class TestBandSaliency:
    def test_shape_and_nonnegativity(self, small_classifier, rng):
        images = np.clip(rng.normal(128, 40, (3, 16, 16)), 0, 255)
        saliency = frequency_band_saliency(
            small_classifier,
            images,
            prepare_for_network(images),
            np.array([0, 1, 2]),
        )
        assert saliency.shape == (8, 8)
        assert np.all(saliency >= 0.0)
        assert saliency.max() > 0.0

    def test_saliency_tracks_image_content(self, small_classifier):
        """A smooth image has its saliency concentrated in low bands, because
        Eq. 2 weights the gradient by the image's own DCT coefficients."""
        x, y = np.meshgrid(np.arange(16), np.arange(16))
        smooth = 128.0 + 60.0 * np.sin(x / 8.0)
        images = np.stack([smooth], axis=0)
        saliency = frequency_band_saliency(
            small_classifier, images, prepare_for_network(images), np.array([0])
        )
        low = saliency[:2, :2].sum()
        high = saliency[4:, 4:].sum()
        assert low > high

    def test_rejects_bad_image_rank(self, small_classifier, rng):
        with pytest.raises(ValueError):
            frequency_band_saliency(
                small_classifier,
                rng.normal(size=(16, 16)),
                rng.normal(size=(1, 1, 16, 16)),
                np.array([0]),
            )
