"""Tests for coefficient distribution fitting."""

import numpy as np
import pytest

from repro.analysis.statistics import band_kurtosis, fit_band_distribution
from repro.analysis.frequency import coefficients_by_band


class TestFitBandDistribution:
    def test_gaussian_data_prefers_gaussian(self, rng):
        samples = rng.normal(0, 10, 20000)
        fit = fit_band_distribution(samples)
        assert fit.preferred_model == "gaussian"
        assert fit.std == pytest.approx(10.0, rel=0.05)

    def test_laplace_data_prefers_laplace(self, rng):
        samples = rng.laplace(0, 10, 20000)
        fit = fit_band_distribution(samples)
        assert fit.preferred_model == "laplace"
        assert fit.laplace_scale == pytest.approx(10.0, rel=0.05)

    def test_requires_two_samples(self):
        with pytest.raises(ValueError):
            fit_band_distribution(np.array([1.0]))

    def test_natural_image_ac_band_is_leptokurtic(self, small_freqnet):
        """Reininger & Gibson: AC coefficients of image data are closer to a
        Laplace distribution than a Gaussian one."""
        coefficients = coefficients_by_band(small_freqnet.images)
        ac_band = coefficients[:, 0, 1]
        fit = fit_band_distribution(ac_band)
        assert fit.preferred_model == "laplace"
        assert band_kurtosis(ac_band) > 0.0


class TestKurtosis:
    def test_gaussian_kurtosis_near_zero(self, rng):
        samples = rng.normal(size=50000)
        assert abs(band_kurtosis(samples)) < 0.1

    def test_requires_four_samples(self):
        with pytest.raises(ValueError):
            band_kurtosis(np.array([1.0, 2.0, 3.0]))
