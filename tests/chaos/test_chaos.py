"""Chaos suite: the fault-tolerant runtime under deterministic faults.

Drives a real figure sweep (Fig. 5 on a shrunken grid) and a cheap
registered experiment through the fault-injection harness
(:mod:`repro.runtime.faults`) and asserts the headline guarantees:

* a sweep recovered from transient raises, a worker crash and a hung
  worker is **bit-identical** to a fault-free run;
* under ``on_error="collect"`` every healthy cell completes and persists
  before :class:`~repro.experiments.api.SweepFailure` surfaces, and a
  follow-up run recomputes **only** the failed cells (store counters);
* a truncated store artifact demotes to a cache miss and only that cell
  recomputes;
* worker crashes never wedge the runtime for subsequent maps;
* the CLI exits 3 with a failure report under ``collect``, and 130 with
  a resume hint on Ctrl-C, keeping finished cells either way.
"""

import json
import os

import pytest

from repro.experiments import fig5_band_sensitivity
from repro.experiments.api import (
    Axis,
    Experiment,
    SweepFailure,
    TableResult,
    register_experiment,
    unregister_experiment,
)
from repro.experiments.common import ExperimentConfig
from repro.experiments.store import ArtifactStore
from repro.runtime import faults
from repro.runtime.executor import fork_available, map_tasks
from repro.runtime.faults import truncate_store_artifacts
from repro.runtime.supervision import FAILURE_CRASH

pytestmark = pytest.mark.skipif(
    not fork_available(),
    reason="the supervised pool (watchdog, crash recovery) requires fork",
)

#: Smallest configuration that still exercises every code path.
MICRO = ExperimentConfig(
    images_per_class=6, image_size=16, epochs=2, batch_size=8
)
#: A shrunken Fig. 5 grid: 2 methods x (2 LF + 2 HF) steps = 8 cells.
SWEEPS = {"LF": (1, 3), "HF": (1, 20)}
#: Watchdog budget for the hang faults: far above a micro cell's runtime,
#: far below the injected 30 s sleep.
TIMEOUT = 10.0


@pytest.fixture(autouse=True)
def _no_leaked_faults(monkeypatch):
    monkeypatch.delenv(faults.ENV_VAR, raising=False)
    faults.clear_faults()
    yield
    faults.clear_faults()


@pytest.fixture(scope="module")
def clean_fig5():
    """The fault-free reference result of the shrunken Fig. 5 sweep."""
    return fig5_band_sensitivity.run(MICRO, step_sweeps=SWEEPS)


class TestFig5Recovery:
    def test_recovered_sweep_is_bit_identical(self, clean_fig5):
        """Transient raise + worker crash + hung worker, all recovered.

        The acceptance criterion: under ``--on-error retry`` the faulted
        sweep's every entry equals the fault-free run exactly — retried
        cells re-run the same task payload, so recovery is invisible in
        the results.
        """
        config = MICRO.with_overrides(
            workers=2, on_error="retry", retries=2, task_timeout=TIMEOUT
        )
        with faults.injected("raise:2:1,exit:5:1,hang:1:1:30"):
            faulted = fig5_band_sensitivity.run(config, step_sweeps=SWEEPS)
        assert faulted.baseline_accuracy == clean_fig5.baseline_accuracy
        assert faulted.entries == clean_fig5.entries

    def test_collect_persists_healthy_cells_then_resumes(
        self, clean_fig5, tmp_path
    ):
        """``collect``: healthy cells land in the store before the failure
        report, and the follow-up run recomputes only the failed cell."""
        root = str(tmp_path / "store")
        config = MICRO.with_overrides(
            workers=2, on_error="collect", retries=1
        )
        with faults.injected("raise:3:0"):  # one permanently cursed cell
            with pytest.raises(SweepFailure) as exc_info:
                fig5_band_sensitivity.run(
                    config, step_sweeps=SWEEPS, store=ArtifactStore(root)
                )
        sweep_failure = exc_info.value
        assert len(sweep_failure.failures) == 1
        cell, envelope = sweep_failure.failures[0]
        assert cell == {"method": "magnitude", "group": "HF", "step": 20.0}
        assert envelope.attempts == 2
        assert "magnitude" in sweep_failure.report()

        # Fault lifted: the rerun recomputes exactly the one failed cell
        # (different runtime knobs on purpose — they never change the
        # store address) and matches the fault-free reference exactly.
        resume_store = ArtifactStore(root)
        resumed = fig5_band_sensitivity.run(
            MICRO.with_overrides(workers=2, on_error="retry"),
            step_sweeps=SWEEPS, store=resume_store,
        )
        assert resume_store.misses == 1
        assert resume_store.hits == 8  # 7 healthy cells + baseline scalar
        assert resumed.entries == clean_fig5.entries
        assert resumed.baseline_accuracy == clean_fig5.baseline_accuracy

        # And a third run is fully warm: zero recomputation, same result.
        warm_store = ArtifactStore(root)
        warm = fig5_band_sensitivity.run(
            MICRO, step_sweeps=SWEEPS, store=warm_store
        )
        assert warm_store.misses == 0
        assert warm.entries == clean_fig5.entries

    def test_truncated_artifact_recomputes_only_that_cell(
        self, clean_fig5, tmp_path
    ):
        """A crashed writer's truncated artifact demotes to a cache miss."""
        root = str(tmp_path / "store")
        fig5_band_sensitivity.run(MICRO, step_sweeps=SWEEPS,
                                  store=ArtifactStore(root))
        truncated = truncate_store_artifacts(root, count=1)
        assert len(truncated) == 1
        store = ArtifactStore(root)
        result = fig5_band_sensitivity.run(
            MICRO, step_sweeps=SWEEPS, store=store
        )
        assert store.misses == 1
        assert result.entries == clean_fig5.entries
        assert result.baseline_accuracy == clean_fig5.baseline_accuracy


class _CheapChaos(Experiment):
    """A trivially cheap experiment for runtime-focused chaos tests."""

    name = "cheap-chaos"
    title = "cheap chaos probe"
    headers = ["i", "sq"]

    def axes(self, ctx):
        return [Axis("i", tuple(range(6)))]

    def build_state(self, key):
        return {}

    def compute_cell(self, key, state, cell, extra):
        return cell["i"] ** 2

    def assemble(self, ctx, results, scalars):
        return TableResult(self.headers, [[i, r] for i, r in enumerate(results)])


@pytest.fixture()
def cheap_chaos():
    register_experiment(_CheapChaos.name, _CheapChaos, overwrite=True)
    yield _CheapChaos()
    unregister_experiment(_CheapChaos.name)


class TestWorkerCrash:
    def test_crash_recovers_under_retry(self, cheap_chaos):
        config = MICRO.with_overrides(workers=2, on_error="retry", retries=2)
        with faults.injected("exit:4:1"):  # os._exit mid-sweep
            result = cheap_chaos.run(config)
        assert [row[1] for row in result.rows()] == [0, 1, 4, 9, 16, 25]

    def test_crash_without_retries_names_the_cell(self, cheap_chaos):
        config = MICRO.with_overrides(workers=2, on_error="retry", retries=0)
        with faults.injected("exit:4:0"):
            with pytest.raises(SweepFailure) as exc_info:
                cheap_chaos.run(config)
        cell, envelope = exc_info.value.failures[0]
        assert cell == {"i": 4}
        assert envelope.kind == FAILURE_CRASH

    def test_crash_never_wedges_subsequent_maps(self, cheap_chaos):
        config = MICRO.with_overrides(workers=2, on_error="retry", retries=0)
        with faults.injected("exit:2:0"):
            with pytest.raises(SweepFailure):
                cheap_chaos.run(config)
        # The runtime (and a fresh pool) must be fully usable afterwards.
        assert map_tasks(
            _cheap_square, range(4), workers=2
        ) == [0, 1, 4, 9]
        rerun = cheap_chaos.run(
            MICRO.with_overrides(workers=2, on_error="retry", retries=1)
        )
        assert [row[1] for row in rerun.rows()] == [0, 1, 4, 9, 16, 25]


def _cheap_square(value):
    return value * value


# ----------------------------------------------------------------------
# CLI chaos: exit statuses, failure reports, resume hints.
# ----------------------------------------------------------------------

_PLUGIN_SOURCE = """\
import os

from repro.experiments import api


class ChaosCli(api.Experiment):
    name = "chaos-cli"
    title = "CLI chaos probe"
    headers = ["n", "value"]

    def axes(self, ctx):
        return [api.Axis("n", (0, 1, 2, 3))]

    def build_state(self, key):
        return {}

    def compute_cell(self, key, state, cell, extra):
        if cell["n"] == 2 and os.environ.get("REPRO_TEST_INTERRUPT") == "1":
            raise KeyboardInterrupt()
        return [cell["n"], cell["n"] * 10]

    def assemble(self, ctx, results, scalars):
        return api.TableResult(self.headers, list(results))


api.register_experiment(ChaosCli.name, ChaosCli, overwrite=True)
"""


@pytest.fixture()
def chaos_cli_plugin(tmp_path, monkeypatch):
    import sys

    (tmp_path / "chaos_cli_plugin.py").write_text(
        _PLUGIN_SOURCE, encoding="utf-8"
    )
    monkeypatch.syspath_prepend(str(tmp_path))
    monkeypatch.setenv("REPRO_EXPERIMENT_MODULES", "chaos_cli_plugin")
    yield
    unregister_experiment("chaos-cli")
    # Drop the import cache so the next test's copy re-registers.
    sys.modules.pop("chaos_cli_plugin", None)


class TestCliChaos:
    def test_collect_exits_3_with_report_then_resumes_clean(
        self, chaos_cli_plugin, tmp_path, monkeypatch, capsys
    ):
        from repro.cli import main

        store_dir = str(tmp_path / "store")
        base = ["run", "chaos-cli", "--scale", "micro", "--workers", "2",
                "--artifacts-dir", store_dir]
        monkeypatch.setenv(faults.ENV_VAR, "raise:1:0")
        assert main([*base, "--on-error", "collect", "--retries", "1"]) == 3
        err = capsys.readouterr().err
        assert "1 of 4 cell(s) failed" in err
        assert "InjectedFault" in err
        assert "resume with" in err and store_dir in err

        # Fault lifted: the same command completes, recomputing only the
        # failed cell.
        monkeypatch.delenv(faults.ENV_VAR)
        assert main([*base, "--on-error", "collect", "--json"]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["rows"] == [[0, 0], [1, 10], [2, 20], [3, 30]]
        assert payload["store"]["misses"] == 1
        assert payload["store"]["hits"] == 3

    def test_retry_policy_recovers_transient_fault(
        self, chaos_cli_plugin, monkeypatch, capsys
    ):
        from repro.cli import main

        monkeypatch.setenv(faults.ENV_VAR, "raise:3:1")
        assert main(
            ["run", "chaos-cli", "--scale", "micro", "--workers", "2",
             "--on-error", "retry", "--retries", "2", "--json"]
        ) == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["rows"] == [[0, 0], [1, 10], [2, 20], [3, 30]]

    def test_keyboard_interrupt_exits_130_and_keeps_finished_cells(
        self, chaos_cli_plugin, tmp_path, monkeypatch, capsys
    ):
        from repro.cli import main

        store_dir = str(tmp_path / "store")
        base = ["run", "chaos-cli", "--scale", "micro",
                "--artifacts-dir", store_dir]
        monkeypatch.setenv("REPRO_TEST_INTERRUPT", "1")
        assert main(base) == 130
        err = capsys.readouterr().err
        assert "interrupted" in err
        assert "resume with" in err and store_dir in err
        # Cells 0 and 1 finished before the interrupt and were persisted.
        assert len(ArtifactStore(store_dir)) == 2

        monkeypatch.delenv("REPRO_TEST_INTERRUPT")
        assert main([*base, "--json"]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["rows"] == [[0, 0], [1, 10], [2, 20], [3, 30]]
        assert payload["store"]["hits"] == 2
        assert payload["store"]["misses"] == 2


class TestCliJsonFailureReport:
    def test_json_sweep_failure_emits_envelopes(
        self, chaos_cli_plugin, tmp_path, monkeypatch, capsys
    ):
        """--json + collect: the failure report is a machine-readable
        payload of TaskFailure envelopes (round-trips via from_json)."""
        from repro.cli import main
        from repro.runtime.supervision import TaskFailure

        monkeypatch.setenv(faults.ENV_VAR, "raise:1:0")
        code = main(
            ["run", "chaos-cli", "--scale", "micro", "--workers", "2",
             "--artifacts-dir", str(tmp_path / "store"),
             "--on-error", "collect", "--retries", "1", "--json"]
        )
        assert code == 3
        captured = capsys.readouterr()
        payload = json.loads(captured.out)
        assert payload["experiment"] == "chaos-cli"
        assert payload["failed"] == 1 and payload["total"] == 4
        (entry,) = payload["failures"]
        assert entry["cell"] == {"n": 1}
        envelope = TaskFailure.from_json(entry["failure"])
        assert envelope.error_type == "InjectedFault"
        assert envelope.attempts == 2
        # The human-readable report still lands on stderr.
        assert "1 of 4 cell(s) failed" in captured.err

    def test_bad_fault_spec_fails_eagerly_with_exit_2(
        self, chaos_cli_plugin, monkeypatch, capsys
    ):
        """A REPRO_FAULTS typo must abort before any cell runs, naming
        the bad token — not surface minutes into a sweep."""
        from repro.cli import main

        monkeypatch.setenv(faults.ENV_VAR, "raise:1,bogus:2")
        assert main(["run", "chaos-cli", "--scale", "micro"]) == 2
        err = capsys.readouterr().err
        assert faults.ENV_VAR in err and "bogus" in err

    def test_backend_flag_round_trips_into_the_payload(
        self, chaos_cli_plugin, monkeypatch, capsys
    ):
        from repro.cli import main

        assert main(
            ["run", "chaos-cli", "--scale", "micro",
             "--backend", "serial", "--json"]
        ) == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["backend"] == "serial"
        assert payload["rows"] == [[0, 0], [1, 10], [2, 20], [3, 30]]

    def test_unknown_backend_is_a_usage_error(self, chaos_cli_plugin, capsys):
        from repro.cli import build_parser

        with pytest.raises(SystemExit) as exc_info:
            build_parser().parse_args(
                ["run", "chaos-cli", "--backend", "threads"]
            )
        assert exc_info.value.code == 2
