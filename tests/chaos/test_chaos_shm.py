"""Shared-memory lifecycle under faults: ``/dev/shm`` never leaks.

The shm result path hands segment ownership from worker to coordinator
by name; these tests prove the three ways that hand-off can be cut —
clean completion, a permanently failing task, and a worker that dies
*after* creating a segment but *before* delivering its name — all end
with zero segments from this run left in ``/dev/shm``.
"""

import os

import numpy as np
import pytest

from repro.runtime import backends, faults, shm
from repro.runtime.executor import fork_available, map_tasks
from repro.runtime.supervision import TaskError

pytestmark = [
    pytest.mark.skipif(
        not fork_available(),
        reason="the supervised pool (watchdog, crash recovery) requires fork",
    ),
    pytest.mark.skipif(
        not shm.enabled(), reason="/dev/shm shared memory required"
    ),
]

#: Results of this shape (128 KiB) always take the segment path.
_SHAPE = (128, 128)

#: Env slot for the orphan test's "already died once" marker file.
MARKER_ENV = "REPRO_TEST_SHM_MARKER"


@pytest.fixture(autouse=True)
def _clean(monkeypatch):
    monkeypatch.delenv(faults.ENV_VAR, raising=False)
    faults.clear_faults()
    yield
    faults.clear_faults()
    backends.shutdown_backends()
    shm.sweep_orphans(prefix=shm.run_prefix())


def _big(task):
    return np.full(_SHAPE, float(task))


def _big_or_die(task):
    """Task 3's first attempt orphans a segment, then the worker dies.

    This is the worst-case crash window: the segment exists but its
    name is still in the dying worker's memory, so no consumer will
    ever unlink it.  Only the backend's close-time orphan sweep can.
    """
    marker = os.environ[MARKER_ENV]
    if task == 3 and not os.path.exists(marker):
        with open(marker, "w"):
            pass
        shm.dump(np.zeros(64 * 1024))
        os._exit(70)
    return _big(task)


def _expect(results, tasks):
    for task, array in zip(tasks, results):
        np.testing.assert_array_equal(array, np.full(_SHAPE, float(task)))


class TestShmLeaks:
    def test_completed_sweep_leaves_no_segments(self):
        results = map_tasks(
            _big, range(6), workers=2, policy="retry", retries=1
        )
        _expect(results, range(6))
        assert shm.list_segments() == []

    def test_crash_recovery_leaves_no_segments(self):
        with faults.injected("exit:2:1"):
            results = map_tasks(
                _big, range(6), workers=2, policy="retry", retries=2
            )
        _expect(results, range(6))
        assert shm.list_segments() == []

    def test_task_error_leaves_no_segments(self):
        with faults.injected("raise:1:0"):
            with pytest.raises(TaskError):
                map_tasks(
                    _big, range(6), workers=2, policy="retry", retries=1
                )
        # Healthy cells' payloads were consumed as they arrived; the
        # break-path harvest drained the stragglers; close() swept.
        assert shm.list_segments() == []

    def test_orphan_from_killed_worker_is_swept(self, tmp_path, monkeypatch):
        monkeypatch.setenv(MARKER_ENV, str(tmp_path / "died-once"))
        results = map_tasks(
            _big_or_die, range(6), workers=2, policy="retry", retries=2
        )
        _expect(results, range(6))
        assert os.path.exists(os.environ[MARKER_ENV])  # the crash happened
        assert shm.list_segments() == []

    def test_shutdown_sweeps_even_without_a_map_close(self):
        # Simulate an orphan appearing outside any live map, then a
        # process-exit shutdown: the registry sweep must collect it.
        orphan = shm.dump(np.zeros(64 * 1024))
        assert orphan.segment in shm.list_segments()
        backends.shutdown_backends()
        assert shm.list_segments() == []
