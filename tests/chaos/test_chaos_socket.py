"""Chaos suite for the socket-worker tier (coordinator + live daemons).

Every test here runs the real wire protocol end to end: a
:class:`~repro.runtime.backends.SocketBackend` coordinator bound to an
ephemeral localhost port, and ``python -m repro.worker`` daemons spawned
as genuine subprocesses.  The headline guarantees:

* a Fig. 5 sweep over the socket backend — while one worker daemon is
  SIGKILLed mid-sweep, another is forced through disconnect/reconnect,
  a heartbeat-dark worker's lease expires and is reassigned, and a
  duplicated result frame is deduplicated — is **bit-identical** to the
  serial reference run;
* a permanently failing cell under ``collect`` persists every healthy
  cell, and the follow-up run recomputes **only** the failed cell;
* a coordinator with no workers degrades to the local backend after the
  connect deadline and still completes the sweep, identically.

Workers rebuild the experiment state from the task key alone (the
documented cold-worker path), so these tests also pin the constraint
that socket task functions and experiments must be importable by module
path on the worker side.
"""

import os
import signal
import subprocess
import sys
import threading
import time
from pathlib import Path

import pytest

from repro.experiments import fig5_band_sensitivity
from repro.experiments.api import SweepFailure
from repro.experiments.common import ExperimentConfig
from repro.experiments.store import ArtifactStore
from repro.runtime import backends, faults
from repro.runtime.backends import get_backend, shutdown_backends
from repro.runtime.executor import fork_available
from repro.runtime.supervision import FAILURE_CRASH

pytestmark = pytest.mark.skipif(
    not fork_available(),
    reason="the socket tier's local degradation target requires fork",
)

REPO_ROOT = Path(__file__).resolve().parents[2]

#: Same shrunken Fig. 5 grid as the local chaos suite: 8 cells.
MICRO = ExperimentConfig(
    images_per_class=6, image_size=16, epochs=2, batch_size=8
)
SWEEPS = {"LF": (1, 3), "HF": (1, 20)}


@pytest.fixture(autouse=True)
def _no_leaked_faults(monkeypatch):
    monkeypatch.delenv(faults.ENV_VAR, raising=False)
    faults.clear_faults()
    yield
    faults.clear_faults()


@pytest.fixture(scope="module")
def clean_fig5():
    """The fault-free serial reference of the shrunken Fig. 5 sweep."""
    return fig5_band_sensitivity.run(MICRO, step_sweeps=SWEEPS)


@pytest.fixture()
def coordinator(monkeypatch):
    """A socket backend on an ephemeral port with chaos-friendly knobs."""
    monkeypatch.setenv(backends.SOCKET_BIND_ENV, "127.0.0.1:0")
    monkeypatch.setenv(backends.SOCKET_CONNECT_DEADLINE_ENV, "10.0")
    monkeypatch.setenv(backends.SOCKET_LEASE_TIMEOUT_ENV, "2.0")
    monkeypatch.setenv(backends.SOCKET_HEARTBEAT_ENV, "0.2")
    shutdown_backends()  # drop any singleton built under other knobs
    backend = get_backend("socket")
    backend._ensure_server()
    yield backend
    shutdown_backends()


def _spawn_worker(address, worker_id: str, worker_faults: str = ""):
    """Start one real ``python -m repro.worker`` daemon subprocess."""
    env = os.environ.copy()
    env["PYTHONPATH"] = os.pathsep.join(
        [str(REPO_ROOT / "src"), env.get("PYTHONPATH", "")]
    ).rstrip(os.pathsep)
    env.pop(faults.ENV_VAR, None)
    if worker_faults:
        env[faults.ENV_VAR] = worker_faults
    return subprocess.Popen(
        [
            sys.executable, "-m", "repro.worker",
            "--connect", f"{address[0]}:{address[1]}",
            "--worker-id", worker_id,
            "--max-idle", "30",
        ],
        env=env,
        stdout=subprocess.DEVNULL,
        stderr=subprocess.DEVNULL,
    )


@pytest.fixture()
def reap():
    """Kill every spawned worker daemon at teardown, crash or not."""
    spawned = []
    yield spawned
    for process in spawned:
        if process.poll() is None:
            process.kill()
        process.wait(timeout=10)


class TestSocketChaosSweep:
    def test_faulted_socket_sweep_is_bit_identical(
        self, coordinator, reap, clean_fig5, tmp_path
    ):
        """The acceptance scenario, all at once.

        Two live daemons serve the sweep while: cell 2's holder drops
        its connection before computing (computes partitioned,
        reconnects, delivers); cell 4's holder goes heartbeat-dark past
        the 2 s lease timeout (expired lease, reassigned); cell 6's
        result frame is sent twice (dedup); and one daemon is SIGKILLed
        mid-sweep (EOF requeues its lease at no attempt charge).  The
        result must equal the serial reference exactly, and a warm
        replay must serve every cell from the store.
        """
        chaos = "disconnect:2:1,hb-loss:4:1:4,dup-result:6:1"
        reap.append(_spawn_worker(coordinator.address, "chaos-a", chaos))
        reap.append(_spawn_worker(coordinator.address, "chaos-b", chaos))
        victim = _spawn_worker(coordinator.address, "chaos-victim")
        reap.append(victim)
        killer = threading.Timer(
            3.0, lambda: victim.send_signal(signal.SIGKILL)
        )
        killer.start()
        root = str(tmp_path / "store")
        config = MICRO.with_overrides(
            workers=3, backend="socket", on_error="retry", retries=2
        )
        try:
            faulted = fig5_band_sensitivity.run(
                config, step_sweeps=SWEEPS, store=ArtifactStore(root)
            )
        finally:
            killer.cancel()
        assert faulted.baseline_accuracy == clean_fig5.baseline_accuracy
        assert faulted.entries == clean_fig5.entries
        assert not coordinator._degraded  # workers stayed available

        # Every cell was persisted exactly once during the chaos run:
        # the warm replay recomputes nothing and matches bit for bit.
        warm_store = ArtifactStore(root)
        warm = fig5_band_sensitivity.run(
            MICRO, step_sweeps=SWEEPS, store=warm_store
        )
        assert warm_store.misses == 0
        assert warm.entries == clean_fig5.entries

    def test_collect_over_socket_resumes_only_the_failed_cell(
        self, coordinator, reap, clean_fig5, tmp_path
    ):
        """A permanently cursed cell (worker-side compute fault) under
        ``collect``: healthy cells persist, the resume recomputes one."""
        reap.append(
            _spawn_worker(coordinator.address, "cursed-a", "raise:3:0")
        )
        reap.append(
            _spawn_worker(coordinator.address, "cursed-b", "raise:3:0")
        )
        root = str(tmp_path / "store")
        config = MICRO.with_overrides(
            workers=2, backend="socket", on_error="collect", retries=1
        )
        with pytest.raises(SweepFailure) as exc_info:
            fig5_band_sensitivity.run(
                config, step_sweeps=SWEEPS, store=ArtifactStore(root)
            )
        sweep_failure = exc_info.value
        assert len(sweep_failure.failures) == 1
        cell, envelope = sweep_failure.failures[0]
        assert envelope.attempts == 2
        assert envelope.error_type == "InjectedFault"

        # Fault lifted (and a different backend on purpose — the
        # backend never changes store addresses): only the cursed cell
        # recomputes, and the result matches the reference exactly.
        resume_store = ArtifactStore(root)
        resumed = fig5_band_sensitivity.run(
            MICRO, step_sweeps=SWEEPS, store=resume_store
        )
        assert resume_store.misses == 1
        assert resume_store.hits == 8  # 7 healthy cells + baseline scalar
        assert resumed.entries == clean_fig5.entries
        assert resumed.baseline_accuracy == clean_fig5.baseline_accuracy


class TestZeroWorkerDegradation:
    def test_sweep_completes_locally_after_connect_deadline(
        self, monkeypatch, clean_fig5, caplog
    ):
        """No daemon ever connects: the coordinator logs the degradation
        and reroutes the whole sweep through the local backend."""
        monkeypatch.setenv(backends.SOCKET_BIND_ENV, "127.0.0.1:0")
        monkeypatch.setenv(backends.SOCKET_CONNECT_DEADLINE_ENV, "0.5")
        shutdown_backends()
        config = MICRO.with_overrides(
            workers=2, backend="socket", on_error="retry", retries=1
        )
        started = time.monotonic()
        with caplog.at_level("WARNING", logger="repro.runtime.backends"):
            result = fig5_band_sensitivity.run(config, step_sweeps=SWEEPS)
        shutdown_backends()
        assert any("degrad" in record.message for record in caplog.records)
        assert time.monotonic() - started > 0.5  # it did wait the deadline
        assert result.baseline_accuracy == clean_fig5.baseline_accuracy
        assert result.entries == clean_fig5.entries


class TestWorkerDeathMidSweep:
    def test_all_workers_dying_degrades_and_completes(
        self, monkeypatch, reap, caplog
    ):
        """The only worker os._exits mid-sweep: its lease is requeued at
        EOF, no fresh worker remains, and after the connect deadline the
        coordinator reroutes the rest of the map locally.  (``close``
        resets the degradation for the next map, so the evidence is the
        logged warning plus the completed, correct result.)"""
        from repro.runtime.supervision import supervised_map

        monkeypatch.setenv(backends.SOCKET_BIND_ENV, "127.0.0.1:0")
        monkeypatch.setenv(backends.SOCKET_CONNECT_DEADLINE_ENV, "2.0")
        monkeypatch.setenv(backends.SOCKET_HEARTBEAT_ENV, "0.2")
        shutdown_backends()
        backend = get_backend("socket")
        backend._ensure_server()
        try:
            reap.append(
                _spawn_worker(backend.address, "doomed", "exit:1:0")
            )
            with caplog.at_level(
                "WARNING", logger="repro.runtime.backends"
            ):
                out = supervised_map(
                    _chaos_square, list(range(4)), workers=1,
                    policy="retry", retries=1, backend="socket",
                )
            assert out == [0, 1, 4, 9]
            assert any(
                "all workers lost" in record.message
                for record in caplog.records
            )
        finally:
            shutdown_backends()


class TestLeaseDeliveryCap:
    """The redelivery bound, unit-tested on the coordinator's internals
    (spawning N workers that each die on cue is timing-dependent; the
    cap itself is pure bookkeeping)."""

    def _backend(self):
        return backends.SocketBackend(bind="127.0.0.1:0")

    def test_under_cap_forfeits_requeue(self):
        backend = self._backend()
        lease = backends._Lease(index=3, attempt=1)
        lease.deliveries = backends.MAX_DELIVERIES - 1
        with backend._lock:
            backend._requeue_locked(lease, "its worker disconnected")
        assert list(backend._queue) == [lease]
        assert backend._events.empty()

    def test_cap_charges_a_crash_attempt(self):
        backend = self._backend()
        lease = backends._Lease(index=3, attempt=2)
        lease.deliveries = backends.MAX_DELIVERIES
        with backend._lock:
            backend._requeue_locked(lease, "its lease expired")
        assert not backend._queue  # no further circulation
        event = backend._events.get_nowait()
        assert (event.index, event.attempt, event.kind) == (3, 2, "failure")
        assert event.failure.kind == FAILURE_CRASH
        assert event.failure.error_type == "LeaseExpired"
        assert "forfeited" in event.failure.message

    def test_stale_delivery_for_retired_lease_is_dropped(self):
        """The double-completion dedup: a result whose lease id has been
        retired (completed elsewhere, revoked, or a previous map) must
        produce no event."""
        from repro.runtime import wire

        backend = self._backend()
        link = backends._Link("w1", sock=None, pid=1)
        backend._handle_result(
            link, wire.result_ok(lease_id=99, index=0, attempt=1),
            wire.dump_payload(42)[0],
        )
        assert backend._events.empty()

    def test_current_lease_result_is_accepted_once(self):
        from repro.runtime import wire

        backend = self._backend()
        lease = backends._Lease(index=5, attempt=1)
        lease.lease_id = 7
        lease.worker_id = "w1"
        backend._leases[7] = lease
        link = backends._Link("w1", sock=None, pid=1)
        link.lease_id = 7
        header = wire.result_ok(lease_id=7, index=5, attempt=1)
        blob = wire.dump_payload(25)[0]
        backend._handle_result(link, header, blob)
        event = backend._events.get_nowait()
        assert (event.kind, event.value) == ("ok", 25)
        assert link.lease_id is None
        # The duplicated frame finds the lease id retired: dropped.
        backend._handle_result(link, header, blob)
        assert backend._events.empty()


def _chaos_square(value):
    """Module-level (socket workers unpickle tasks by import path)."""
    return value * value
