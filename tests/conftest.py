"""Shared fixtures for the test suite."""

import numpy as np
import pytest

from repro.data import Dataset, FreqNetConfig, generate_freqnet


@pytest.fixture(scope="session")
def rng():
    """A seeded random generator shared by tests that need raw noise."""
    return np.random.default_rng(12345)


@pytest.fixture(scope="session")
def small_freqnet() -> Dataset:
    """A small FreqNet dataset reused across test modules (read-only)."""
    return generate_freqnet(
        FreqNetConfig(images_per_class=6, image_size=32, seed=3)
    )


@pytest.fixture(scope="session")
def tiny_freqnet() -> Dataset:
    """A very small dataset for the slowest integration tests."""
    return generate_freqnet(
        FreqNetConfig(images_per_class=4, image_size=16, seed=5)
    )


@pytest.fixture
def random_image(rng) -> np.ndarray:
    """A 32x32 grayscale image with moderate contrast."""
    return np.clip(rng.normal(128.0, 35.0, (32, 32)), 0.0, 255.0)


@pytest.fixture
def random_rgb_image(rng) -> np.ndarray:
    """A 24x24 RGB image."""
    return np.clip(rng.normal(128.0, 35.0, (24, 24, 3)), 0.0, 255.0)


@pytest.fixture
def smooth_image() -> np.ndarray:
    """A smooth, highly compressible grayscale image."""
    x, y = np.meshgrid(np.arange(40), np.arange(40))
    return 128.0 + 60.0 * np.sin(x / 12.0) * np.cos(y / 15.0)
