"""Serializable artifacts: JSON round-trips and DeepNJpeg.save/load."""

import json

import numpy as np
import pytest

from repro.analysis.bands import BandSegmentation, position_based_segmentation
from repro.analysis.frequency import FrequencyStatistics
from repro.core.config import DeepNJpegConfig
from repro.core.pipeline import DeepNJpeg
from repro.core.plm import PiecewiseLinearMapping
from repro.core.table_design import TableDesignResult
from repro.data.synthetic import FreqNetConfig, generate_freqnet
from repro.jpeg.huffman import HuffmanTable
from repro.jpeg.quantization import QuantizationTable


@pytest.fixture(scope="module")
def dataset():
    return generate_freqnet(
        FreqNetConfig(image_size=16, images_per_class=6, seed=9)
    )


@pytest.fixture(scope="module")
def fitted(dataset):
    return DeepNJpeg(DeepNJpegConfig(sampling_interval=2)).fit(dataset)


def _json_round_trip(payload):
    """Force the payload through real JSON text (floats via repr)."""
    return json.loads(json.dumps(payload))


class TestJsonRoundTrips:
    def test_quantization_table(self):
        table = QuantizationTable.standard_luminance(35)
        rebuilt = QuantizationTable.from_json(_json_round_trip(table.to_json()))
        np.testing.assert_array_equal(rebuilt.values, table.values)
        assert rebuilt.name == table.name

    def test_huffman_table(self):
        table = HuffmanTable.standard_ac_luminance()
        rebuilt = HuffmanTable.from_json(_json_round_trip(table.to_json()))
        assert rebuilt == table
        assert rebuilt.encode(0x23) == table.encode(0x23)

    def test_optimized_huffman_table(self):
        table = HuffmanTable.from_frequencies(
            {0: 100, 1: 50, 0x23: 7, 0xF0: 3}, "opt"
        )
        rebuilt = HuffmanTable.from_json(_json_round_trip(table.to_json()))
        assert rebuilt == table

    def test_frequency_statistics_exact_floats(self, fitted):
        statistics = fitted.statistics
        rebuilt = FrequencyStatistics.from_json(
            _json_round_trip(statistics.to_json())
        )
        np.testing.assert_array_equal(rebuilt.std, statistics.std)
        np.testing.assert_array_equal(rebuilt.mean, statistics.mean)
        assert rebuilt.block_count == statistics.block_count
        assert rebuilt.image_count == statistics.image_count

    def test_piecewise_linear_mapping(self):
        mapping = PiecewiseLinearMapping.paper_imagenet()
        rebuilt = PiecewiseLinearMapping.from_json(
            _json_round_trip(mapping.to_json())
        )
        assert rebuilt == mapping

    def test_band_segmentation(self):
        segmentation = position_based_segmentation()
        rebuilt = BandSegmentation.from_json(
            _json_round_trip(segmentation.to_json())
        )
        np.testing.assert_array_equal(rebuilt.groups, segmentation.groups)
        assert rebuilt.method == segmentation.method

    def test_config(self):
        config = DeepNJpegConfig(k3=2.5, lf_intercept=None, chroma_scale=2.0)
        assert DeepNJpegConfig.from_json(
            _json_round_trip(config.to_json())
        ) == config

    def test_table_design_result(self, fitted):
        design = fitted.design
        rebuilt = TableDesignResult.from_json(
            _json_round_trip(design.to_json())
        )
        np.testing.assert_array_equal(rebuilt.table.values, design.table.values)
        np.testing.assert_array_equal(
            rebuilt.chroma_table.values, design.chroma_table.values
        )
        assert rebuilt.mapping == design.mapping
        np.testing.assert_array_equal(
            rebuilt.statistics.std, design.statistics.std
        )
        np.testing.assert_array_equal(
            rebuilt.segmentation.groups, design.segmentation.groups
        )


class TestSaveLoad:
    def test_save_requires_fitted(self, tmp_path):
        with pytest.raises(RuntimeError, match="fitted"):
            DeepNJpeg().save(str(tmp_path / "artifact.json"))

    def test_load_rejects_foreign_json(self, tmp_path):
        path = tmp_path / "other.json"
        path.write_text('{"format": "something-else"}')
        with pytest.raises(ValueError, match="format"):
            DeepNJpeg.load(str(path))

    def test_load_rejects_future_version(self, tmp_path, fitted):
        path = tmp_path / "artifact.json"
        fitted.save(str(path))
        payload = json.loads(path.read_text())
        payload["version"] = 999
        path.write_text(json.dumps(payload))
        with pytest.raises(ValueError, match="version"):
            DeepNJpeg.load(str(path))

    def test_round_trip_bit_identical_streams(self, tmp_path, fitted, dataset):
        path = tmp_path / "artifact.json"
        fitted.save(str(path))
        loaded = DeepNJpeg.load(str(path))
        assert loaded.config == fitted.config
        np.testing.assert_array_equal(
            loaded.table.values, fitted.table.values
        )
        for image in dataset.images[:3]:
            assert loaded.encode(image).data == fitted.encode(image).data
            assert (
                loaded.encode_to_bytes(image) == fitted.encode_to_bytes(image)
            )

    def test_round_trip_color_streams(self, tmp_path, fitted):
        rng = np.random.default_rng(17)
        rgb = rng.uniform(0.0, 255.0, size=(16, 16, 3)).round()
        path = tmp_path / "artifact.json"
        fitted.save(str(path))
        loaded = DeepNJpeg.load(str(path))
        original = fitted.encode(rgb)
        reloaded = loaded.encode(rgb)
        for left, right in zip(reloaded.planes, original.planes):
            assert left.data == right.data

    @pytest.mark.parametrize("workers", [1, 4])
    def test_loaded_pipeline_compresses_dataset_identically(
        self, tmp_path, fitted, dataset, workers
    ):
        path = tmp_path / "artifact.json"
        fitted.save(str(path))
        loaded = DeepNJpeg.load(str(path))
        original = fitted.compress_dataset(dataset, workers=workers)
        reloaded = loaded.compress_dataset(dataset, workers=workers)
        assert reloaded.payload_bytes == original.payload_bytes
        assert reloaded.header_bytes == original.header_bytes
        np.testing.assert_array_equal(
            reloaded.dataset.images, original.dataset.images
        )

    @pytest.mark.parametrize("workers", [1, 4])
    def test_compress_batch_workers(self, tmp_path, fitted, dataset, workers):
        path = tmp_path / "artifact.json"
        fitted.save(str(path))
        loaded = DeepNJpeg.load(str(path))
        stack = dataset.images[:6]
        original = fitted.compress_batch(stack, workers=workers)
        reloaded = loaded.compress_batch(stack, workers=workers)
        assert [r.payload_bytes for r in reloaded] == [
            r.payload_bytes for r in original
        ]
        for left, right in zip(reloaded, original):
            np.testing.assert_array_equal(
                left.reconstructed, right.reconstructed
            )
