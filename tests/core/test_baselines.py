"""Tests for the dataset-level compressors (JPEG, RM-HF, SAME-Q)."""

import numpy as np
import pytest

from repro.core.baselines import (
    JpegCompressor,
    RemoveHighFrequencyCompressor,
    SameQCompressor,
    compress_batch,
    compress_dataset_with_table,
)
from repro.jpeg.quantization import (
    MAX_QUANT_STEP,
    QuantizationTable,
    STANDARD_LUMINANCE_TABLE,
)
from repro.jpeg.zigzag import zigzag


class TestJpegCompressor:
    def test_quality_monotone_in_size(self, small_freqnet):
        sizes = []
        for quality in (100, 60, 20):
            compressed = JpegCompressor(quality).compress_dataset(small_freqnet)
            sizes.append(compressed.total_bytes)
        assert sizes == sorted(sizes, reverse=True)

    def test_reconstruction_matches_shape_and_labels(self, small_freqnet):
        compressed = JpegCompressor(50).compress_dataset(small_freqnet)
        assert compressed.dataset.images.shape == small_freqnet.images.shape
        np.testing.assert_array_equal(
            compressed.dataset.labels, small_freqnet.labels
        )

    def test_compression_ratio_definition(self, small_freqnet):
        compressed = JpegCompressor(50).compress_dataset(small_freqnet)
        assert compressed.compression_ratio == pytest.approx(
            small_freqnet.uncompressed_bytes() / compressed.total_bytes
        )
        assert compressed.bytes_per_image == pytest.approx(
            compressed.total_bytes / len(small_freqnet)
        )

    def test_invalid_quality(self):
        with pytest.raises(ValueError):
            JpegCompressor(0)

    def test_tables_are_standard_scaled(self):
        compressor = JpegCompressor(50)
        np.testing.assert_allclose(
            compressor.luma_table().values, STANDARD_LUMINANCE_TABLE
        )


class TestRemoveHighFrequency:
    def test_removed_bands_have_max_step(self):
        compressor = RemoveHighFrequencyCompressor(removed_components=5,
                                                   quality=100)
        table_zigzag = zigzag(compressor.luma_table().values)
        assert np.all(table_zigzag[-5:] == MAX_QUANT_STEP)
        assert np.all(table_zigzag[:-5] == 1)

    def test_zero_removed_equals_plain_jpeg(self, small_freqnet):
        plain = JpegCompressor(100).compress_dataset(small_freqnet)
        rm0 = RemoveHighFrequencyCompressor(0, quality=100).compress_dataset(
            small_freqnet
        )
        assert rm0.total_bytes == plain.total_bytes

    def test_removing_more_components_compresses_more(self, small_freqnet):
        small = RemoveHighFrequencyCompressor(3).compress_dataset(small_freqnet)
        large = RemoveHighFrequencyCompressor(9).compress_dataset(small_freqnet)
        assert large.total_bytes < small.total_bytes

    def test_invalid_arguments(self):
        with pytest.raises(ValueError):
            RemoveHighFrequencyCompressor(64)
        with pytest.raises(ValueError):
            RemoveHighFrequencyCompressor(3, quality=0)

    def test_name_matches_paper_notation(self):
        assert RemoveHighFrequencyCompressor(3).name == "RM-HF3"


class TestSameQ:
    def test_flat_table(self):
        compressor = SameQCompressor(8)
        assert np.all(compressor.luma_table().values == 8)
        assert compressor.name == "SAME-Q8"

    def test_larger_step_compresses_more(self, small_freqnet):
        q4 = SameQCompressor(4).compress_dataset(small_freqnet)
        q12 = SameQCompressor(12).compress_dataset(small_freqnet)
        assert q12.total_bytes < q4.total_bytes
        assert q12.mean_psnr < q4.mean_psnr

    def test_invalid_step(self):
        with pytest.raises(ValueError):
            SameQCompressor(0.5)


class TestCompressDatasetWithTable:
    def test_color_dataset_path(self, rng):
        from repro.data import Dataset

        images = np.clip(rng.normal(128, 30, (4, 16, 16, 3)), 0, 255)
        dataset = Dataset(images, np.zeros(4, dtype=int), ["only"])
        compressed = compress_dataset_with_table(
            dataset, QuantizationTable.standard_luminance(80),
            QuantizationTable.standard_chrominance(80),
        )
        assert compressed.dataset.images.shape == images.shape
        assert compressed.payload_bytes > 0

    def test_method_name_recorded(self, small_freqnet):
        compressed = compress_dataset_with_table(
            small_freqnet, QuantizationTable.flat(4), method="custom-flat"
        )
        assert compressed.method == "custom-flat"

    def test_payload_ratio_larger_than_total_ratio(self, small_freqnet):
        compressed = compress_dataset_with_table(
            small_freqnet, QuantizationTable.flat(8)
        )
        assert (
            compressed.payload_compression_ratio > compressed.compression_ratio
        )


class TestCompressBatch:
    def test_matches_per_image_compression(self, small_freqnet):
        from repro.jpeg.codec import GrayscaleJpegCodec

        table = QuantizationTable.standard_luminance(50)
        results = compress_batch(small_freqnet.images, table)
        codec = GrayscaleJpegCodec(table)
        assert len(results) == len(small_freqnet)
        for index, result in enumerate(results):
            single = codec.compress(small_freqnet.images[index])
            assert result.payload_bytes == single.payload_bytes
            np.testing.assert_array_equal(
                result.reconstructed, single.reconstructed
            )

    def test_dataset_compression_goes_through_batch(self, small_freqnet):
        table = QuantizationTable.standard_luminance(50)
        compressed = compress_dataset_with_table(
            small_freqnet, table, method="batch-check"
        )
        results = compress_batch(small_freqnet.images, table)
        assert compressed.payload_bytes == sum(
            result.payload_bytes for result in results
        )
        assert compressed.header_bytes == sum(
            result.header_bytes for result in results
        )

    def test_rejects_bad_shapes(self):
        table = QuantizationTable.standard_luminance(50)
        with pytest.raises(ValueError):
            compress_batch(np.zeros((8, 8)), table)

    def test_color_batch_matches_per_image(self, rng):
        from repro.jpeg.codec import ColorJpegCodec

        images = np.clip(rng.normal(128, 40, (2, 16, 16, 3)), 0, 255)
        luma = QuantizationTable.standard_luminance(60)
        chroma = QuantizationTable.standard_chrominance(60)
        results = compress_batch(images, luma, chroma)
        codec = ColorJpegCodec(luma, chroma)
        for index, result in enumerate(results):
            single = codec.compress(images[index])
            assert result.payload_bytes == single.payload_bytes
            np.testing.assert_array_equal(
                result.reconstructed, single.reconstructed
            )

    def test_narrow_grayscale_dataset_dispatches_as_grayscale(self, rng):
        from repro.data.dataset import Dataset

        # (N, H, 3) is an unambiguous grayscale stack at the dataset level.
        images = np.clip(rng.normal(128, 40, (4, 16, 3)), 0, 255)
        dataset = Dataset(images=images, labels=np.zeros(4, dtype=int),
                          class_names=["only"])
        table = QuantizationTable.standard_luminance(50)
        compressed = compress_dataset_with_table(dataset, table)
        assert compressed.dataset.images.shape == images.shape
        assert compressed.payload_bytes > 0
