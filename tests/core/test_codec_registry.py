"""The Codec protocol, the string-keyed registry and spec round-trips."""

import numpy as np
import pytest

from repro.core.baselines import (
    JpegCompressor,
    RemoveHighFrequencyCompressor,
    SameQCompressor,
)
from repro.core.codec import (
    Codec,
    build_codec,
    build_codec_from_spec,
    codec_for_stack,
    codec_names,
    register_codec,
    unregister_codec,
)
from repro.core.pipeline import DeepNJpeg
from repro.data.synthetic import FreqNetConfig, generate_freqnet
from repro.jpeg.codec import ColorJpegCodec, GrayscaleJpegCodec
from repro.jpeg.quantization import QuantizationTable


@pytest.fixture(scope="module")
def gray_image():
    rng = np.random.default_rng(31)
    return rng.uniform(0.0, 255.0, size=(24, 24)).round()


@pytest.fixture(scope="module")
def rgb_image():
    rng = np.random.default_rng(32)
    return rng.uniform(0.0, 255.0, size=(16, 16, 3)).round()


@pytest.fixture(scope="module")
def fitted_deepn():
    dataset = generate_freqnet(
        FreqNetConfig(image_size=16, images_per_class=4, seed=5)
    )
    return DeepNJpeg().fit(dataset)


class TestProtocol:
    def test_all_surfaces_implement_codec(self, fitted_deepn):
        table = QuantizationTable.standard_luminance(80)
        for codec in (
            GrayscaleJpegCodec(table),
            ColorJpegCodec(table),
            JpegCompressor(80),
            SameQCompressor(4),
            RemoveHighFrequencyCompressor(3),
            fitted_deepn,
        ):
            assert isinstance(codec, Codec)

    def test_compressor_codec_methods_match_underlying_codec(
        self, gray_image
    ):
        compressor = JpegCompressor(60)
        reference = GrayscaleJpegCodec(compressor.luma_table())
        assert (
            compressor.encode(gray_image).data
            == reference.encode(gray_image).data
        )
        np.testing.assert_array_equal(
            compressor.decode(compressor.encode(gray_image)),
            reference.decode(reference.encode(gray_image)),
        )
        assert (
            compressor.compress(gray_image).payload_bytes
            == reference.compress(gray_image).payload_bytes
        )
        assert compressor.header_bytes() == reference.header_bytes()

    def test_compressor_color_dispatch(self, rgb_image):
        compressor = JpegCompressor(60)
        reference = ColorJpegCodec(
            compressor.luma_table(), compressor.chroma_table()
        )
        assert (
            compressor.compress(rgb_image).payload_bytes
            == reference.compress(rgb_image).payload_bytes
        )
        assert compressor.header_bytes(color=True) == reference.header_bytes()

    def test_compressor_batch_matches_per_image(self, gray_image):
        stack = np.stack([gray_image, gray_image[::-1].copy()])
        compressor = SameQCompressor(4)
        batched = compressor.compress_batch(stack)
        singles = [compressor.compress(image) for image in stack]
        for left, right in zip(batched, singles):
            assert left.payload_bytes == right.payload_bytes
            np.testing.assert_array_equal(
                left.reconstructed, right.reconstructed
            )

    def test_compressor_batch_rejects_ambiguous_stack(self):
        # Same contract as the module-level compress_batch: a (N, H, 3)
        # stack is ambiguous and gets the explicit guidance message, not
        # a misrouted colour-path failure.
        with pytest.raises(ValueError, match="ambiguous"):
            JpegCompressor(50).compress_batch(np.zeros((4, 8, 3)))

    def test_compressor_single_image_bad_shape(self):
        with pytest.raises(ValueError, match=r"\(H, W\)"):
            JpegCompressor(50).compress(np.zeros((2, 8, 8)))

    def test_compressor_three_wide_grayscale_image(self):
        # A single (H, 3) grayscale image is rank-unambiguous and must
        # encode through the grayscale path, not trip the stack guard.
        image = np.arange(48, dtype=np.float64).reshape(16, 3)
        compressor = SameQCompressor(4)
        reference = GrayscaleJpegCodec(compressor.luma_table())
        assert compressor.encode(image).data == reference.encode(image).data

    def test_wrapper_honours_optimize_huffman(self, gray_image):
        # A DeepNJpegCompressor wrapping an optimize_huffman pipeline must
        # produce exactly the streams its spec() describes — i.e. the
        # pipeline's own — through every protocol method.
        from repro.core.config import DeepNJpegConfig
        from repro.core.pipeline import DeepNJpegCompressor

        dataset = generate_freqnet(
            FreqNetConfig(image_size=16, images_per_class=4, seed=6)
        )
        deepn = DeepNJpeg(DeepNJpegConfig(optimize_huffman=True)).fit(dataset)
        wrapper = DeepNJpegCompressor(deepn)
        assert wrapper.optimize_huffman()
        assert (
            wrapper.encode(gray_image).data == deepn.encode(gray_image).data
        )
        assert (
            wrapper.compress(gray_image).payload_bytes
            == deepn.compress(gray_image).payload_bytes
        )
        rebuilt = build_codec_from_spec(wrapper.spec())
        assert (
            rebuilt.compress(gray_image).payload_bytes
            == wrapper.compress(gray_image).payload_bytes
        )
        # The dataset path follows the pipeline's configuration too.
        assert (
            wrapper.compress_dataset(dataset).payload_bytes
            == deepn.compress_dataset(dataset).payload_bytes
        )

    def test_deepn_batch_contracts(self, fitted_deepn):
        assert fitted_deepn.compress_batch(np.empty((0, 16, 16))) == []
        with pytest.raises(ValueError, match="ambiguous"):
            fitted_deepn.compress_batch(np.zeros((4, 8, 3)))
        with pytest.raises(ValueError, match="stack"):
            fitted_deepn.compress_batch(np.zeros((8, 8)))


class TestRegistry:
    def test_builtin_names_registered(self):
        names = codec_names()
        for name in (
            "jpeg-grayscale", "jpeg-color", "jpeg", "rm-hf", "same-q",
            "deepn-jpeg",
        ):
            assert name in names

    def test_build_codec_by_name(self, gray_image):
        codec = build_codec("jpeg", quality=70)
        assert isinstance(codec, JpegCompressor)
        assert codec.quality == 70

    def test_unknown_name_raises_with_known_names(self):
        with pytest.raises(KeyError, match="unknown codec 'nope'"):
            build_codec("nope")
        with pytest.raises(KeyError, match="deepn-jpeg"):
            build_codec("nope")

    def test_duplicate_registration_raises(self):
        register_codec("test-dup", JpegCompressor)
        try:
            with pytest.raises(ValueError, match="already registered"):
                register_codec("test-dup", SameQCompressor)
            # overwrite=True replaces the factory.
            register_codec("test-dup", SameQCompressor, overwrite=True)
            assert isinstance(build_codec("test-dup", step=4), SameQCompressor)
        finally:
            unregister_codec("test-dup")
        assert "test-dup" not in codec_names()

    def test_unregister_restores_builtin_factory(self):
        # A test that swaps in a fake over a builtin and then cleans up
        # must get the original factory back, not a dead name — even
        # when the overwrite happens before any registry read (the
        # builtin snapshot is taken at registration, not lazily).
        register_codec("jpeg", SameQCompressor, overwrite=True)
        try:
            assert isinstance(build_codec("jpeg", step=4), SameQCompressor)
        finally:
            unregister_codec("jpeg")
        assert isinstance(build_codec("jpeg", quality=70), JpegCompressor)

    def test_invalid_name_rejected(self):
        with pytest.raises(ValueError, match="non-empty string"):
            register_codec("", JpegCompressor)

    def test_spec_missing_codec_key(self):
        with pytest.raises(ValueError, match="missing 'codec'"):
            build_codec_from_spec({"quality": 80})


class TestSpecRoundTrips:
    def _assert_same_stream(self, left, right, image):
        assert left.compress(image).payload_bytes == (
            right.compress(image).payload_bytes
        )
        np.testing.assert_array_equal(
            left.compress(image).reconstructed,
            right.compress(image).reconstructed,
        )

    def test_jpeg_codecs(self, gray_image, rgb_image):
        gray = GrayscaleJpegCodec(
            QuantizationTable.standard_luminance(55), optimize_huffman=True
        )
        rebuilt = build_codec_from_spec(gray.spec())
        assert rebuilt.optimize_huffman
        self._assert_same_stream(gray, rebuilt, gray_image)

        color = ColorJpegCodec(
            QuantizationTable.standard_luminance(55),
            QuantizationTable.standard_chrominance(70),
            subsample_chroma=False,
        )
        rebuilt = build_codec_from_spec(color.spec())
        assert not rebuilt.subsample_chroma
        self._assert_same_stream(color, rebuilt, rgb_image)

    def test_baseline_compressors(self, gray_image):
        for compressor in (
            JpegCompressor(35),
            RemoveHighFrequencyCompressor(6, quality=90),
            SameQCompressor(8),
        ):
            rebuilt = build_codec_from_spec(compressor.spec())
            assert type(rebuilt) is type(compressor)
            assert rebuilt.name == compressor.name
            self._assert_same_stream(compressor, rebuilt, gray_image)

    def test_specs_survive_json_serialization(self, gray_image, fitted_deepn):
        import json

        spec = json.loads(json.dumps(fitted_deepn.spec()))
        rebuilt = build_codec_from_spec(spec)
        assert rebuilt.is_fitted
        assert (
            rebuilt.encode(gray_image).data
            == fitted_deepn.encode(gray_image).data
        )

    def test_unfitted_deepn_spec(self):
        pipeline = build_codec("deepn-jpeg")
        assert isinstance(pipeline, DeepNJpeg)
        assert not pipeline.is_fitted
        assert pipeline.spec()["design"] is None


class TestCodecForStack:
    def test_modality_dispatch(self):
        table = QuantizationTable.standard_luminance(80)
        assert isinstance(
            codec_for_stack(np.zeros((2, 8, 8)), table), GrayscaleJpegCodec
        )
        assert isinstance(
            codec_for_stack(np.zeros((2, 8, 8, 3)), table), ColorJpegCodec
        )

    def test_ambiguous_stack_rejected_in_strict_mode(self):
        table = QuantizationTable.standard_luminance(80)
        with pytest.raises(ValueError, match="ambiguous"):
            codec_for_stack(np.zeros((4, 8, 3)), table)
        # Dataset callers assert modality from dimensionality instead.
        assert isinstance(
            codec_for_stack(np.zeros((4, 8, 3)), table, strict=False),
            GrayscaleJpegCodec,
        )

    def test_bad_rank_rejected(self):
        table = QuantizationTable.standard_luminance(80)
        with pytest.raises(ValueError, match="stack"):
            codec_for_stack(np.zeros((8, 8)), table)
