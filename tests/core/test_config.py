"""Tests for the DeepN-JPEG configuration."""

import pytest

from repro.core.config import DeepNJpegConfig


class TestDeepNJpegConfig:
    def test_defaults_match_band_split(self):
        config = DeepNJpegConfig()
        assert config.lf_band_count == 6
        assert config.mf_band_count == 22
        assert config.q_min <= config.q2 <= config.q1 <= config.q_max_step

    def test_rejects_inconsistent_anchors(self):
        with pytest.raises(ValueError):
            DeepNJpegConfig(q1=10.0, q2=20.0)
        with pytest.raises(ValueError):
            DeepNJpegConfig(q_min=30.0, q2=20.0)

    def test_rejects_bad_band_counts(self):
        with pytest.raises(ValueError):
            DeepNJpegConfig(lf_band_count=0)
        with pytest.raises(ValueError):
            DeepNJpegConfig(lf_band_count=40, mf_band_count=30)

    def test_rejects_bad_sampling_and_chroma(self):
        with pytest.raises(ValueError):
            DeepNJpegConfig(sampling_interval=0)
        with pytest.raises(ValueError):
            DeepNJpegConfig(chroma_scale=0.0)
        with pytest.raises(ValueError):
            DeepNJpegConfig(k3=-1.0)

    def test_is_frozen(self):
        config = DeepNJpegConfig()
        with pytest.raises(Exception):
            config.q1 = 10.0
