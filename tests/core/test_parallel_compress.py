"""Sharded dataset compression: edge cases and worker-count determinism."""

import numpy as np
import pytest

from repro.core.baselines import (
    JpegCompressor,
    compress_batch,
    compress_dataset_with_table,
)
from repro.data.dataset import Dataset
from repro.jpeg.codec import GrayscaleJpegCodec
from repro.jpeg.quantization import QuantizationTable


@pytest.fixture(scope="module")
def luma_table():
    return QuantizationTable.standard_luminance(90)


@pytest.fixture(scope="module")
def gray_stack():
    rng = np.random.default_rng(11)
    return rng.uniform(0.0, 255.0, size=(7, 24, 24)).round()


@pytest.fixture(scope="module")
def color_stack():
    rng = np.random.default_rng(12)
    return rng.uniform(0.0, 255.0, size=(5, 16, 16, 3)).round()


def _assert_results_equal(left, right):
    assert len(left) == len(right)
    for first, second in zip(left, right):
        assert first.payload_bytes == second.payload_bytes
        assert first.header_bytes == second.header_bytes
        assert first.original_bytes == second.original_bytes
        np.testing.assert_array_equal(
            first.reconstructed, second.reconstructed
        )


class TestEdgeCases:
    """The cases the sharding hits: empty, oversized chunk, odd tail."""

    def test_empty_grayscale_stack(self, luma_table):
        assert compress_batch(np.empty((0, 16, 16)), luma_table) == []

    def test_empty_color_stack(self, luma_table):
        assert compress_batch(np.empty((0, 16, 16, 3)), luma_table) == []

    def test_empty_stack_with_workers(self, luma_table):
        # No images, no results — and no pool is ever forked.
        assert compress_batch(
            np.empty((0, 16, 16)), luma_table, workers=4
        ) == []

    def test_empty_dataset_through_table_path(self, luma_table):
        dataset = Dataset(
            images=np.empty((0, 16, 16)),
            labels=np.empty((0,), dtype=np.intp),
            class_names=["only"],
        )
        for workers in (1, 3):
            compressed = compress_dataset_with_table(
                dataset, luma_table, workers=workers
            )
            assert len(compressed.dataset) == 0
            assert compressed.payload_bytes == 0
            assert compressed.header_bytes == 0

    def test_single_image_stack(self, luma_table, gray_stack):
        results = compress_batch(gray_stack[:1], luma_table, workers=4)
        reference = GrayscaleJpegCodec(luma_table).compress(gray_stack[0])
        assert len(results) == 1
        assert results[0].payload_bytes == reference.payload_bytes
        np.testing.assert_array_equal(
            results[0].reconstructed, reference.reconstructed
        )

    def test_worker_count_exceeding_stack(self, luma_table, gray_stack):
        # More workers than images: every shard is short, results exact.
        serial = compress_batch(gray_stack, luma_table, workers=1)
        oversubscribed = compress_batch(gray_stack, luma_table, workers=32)
        _assert_results_equal(serial, oversubscribed)

    def test_odd_final_chunk(self, luma_table, gray_stack):
        # 7 images over 3 workers -> 2-image shards with a short tail.
        serial = compress_batch(gray_stack, luma_table, workers=1)
        parallel = compress_batch(gray_stack, luma_table, workers=3)
        _assert_results_equal(serial, parallel)


class TestWorkerDeterminism:
    def test_grayscale_streams_identical_across_worker_counts(
        self, luma_table, gray_stack
    ):
        serial = compress_batch(gray_stack, luma_table, workers=1)
        parallel = compress_batch(gray_stack, luma_table, workers=4)
        _assert_results_equal(serial, parallel)
        # And both equal the historical per-image path.
        codec = GrayscaleJpegCodec(luma_table)
        per_image = [codec.compress(image) for image in gray_stack]
        _assert_results_equal(serial, per_image)

    def test_color_streams_identical_across_worker_counts(
        self, luma_table, color_stack
    ):
        serial = compress_batch(color_stack, luma_table, workers=1)
        parallel = compress_batch(color_stack, luma_table, workers=4)
        _assert_results_equal(serial, parallel)

    def test_dataset_aggregates_identical(self, gray_stack):
        dataset = Dataset(
            images=gray_stack,
            labels=np.zeros(gray_stack.shape[0], dtype=np.intp),
            class_names=["only"],
        )
        compressor = JpegCompressor(85)
        serial = compressor.compress_dataset(dataset)
        parallel = compressor.compress_dataset(dataset, workers=4)
        assert serial.payload_bytes == parallel.payload_bytes
        assert serial.header_bytes == parallel.header_bytes
        assert serial.mean_psnr == parallel.mean_psnr
        np.testing.assert_array_equal(
            serial.dataset.images, parallel.dataset.images
        )

    def test_warm_persistent_pool_sees_each_jobs_own_stack(
        self, luma_table, gray_stack, monkeypatch
    ):
        """Regression: fork-inherited stack globals went stale.

        Workers forked for job 1 used to keep job 1's ``_PARALLEL_JOB``
        global, so a second sweep on a warm persistent pool silently
        recompressed the *first* stack.  Shared-memory stack handles
        make each task self-contained; both sweeps must match serial.
        """
        from repro.runtime.backends import shutdown_backends

        monkeypatch.setenv("REPRO_BACKEND", "persistent")
        other_stack = np.flip(gray_stack, axis=0).copy()
        try:
            first = compress_batch(gray_stack, luma_table, workers=2)
            second = compress_batch(other_stack, luma_table, workers=2)
        finally:
            shutdown_backends()
        _assert_results_equal(
            first, compress_batch(gray_stack, luma_table, workers=1)
        )
        _assert_results_equal(
            second, compress_batch(other_stack, luma_table, workers=1)
        )

    def test_optimized_huffman_sharding(self, luma_table, gray_stack):
        # Per-image optimized tables fall back to the per-image path in
        # each shard; results still independent of the worker count.
        serial = compress_batch(
            gray_stack, luma_table, optimize_huffman=True, workers=1
        )
        parallel = compress_batch(
            gray_stack, luma_table, optimize_huffman=True, workers=3
        )
        _assert_results_equal(serial, parallel)
