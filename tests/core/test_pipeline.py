"""Tests for the end-to-end DeepN-JPEG pipeline."""

import numpy as np
import pytest

from repro.core.baselines import JpegCompressor
from repro.core.config import DeepNJpegConfig
from repro.core.pipeline import DeepNJpeg, DeepNJpegCompressor


@pytest.fixture(scope="module")
def fitted_pipeline(small_freqnet):
    return DeepNJpeg(DeepNJpegConfig(sampling_interval=2)).fit(small_freqnet)


class TestFitting:
    def test_requires_fit_before_use(self, small_freqnet):
        pipeline = DeepNJpeg()
        assert not pipeline.is_fitted
        with pytest.raises(RuntimeError):
            pipeline.compress(small_freqnet.images[0])
        with pytest.raises(RuntimeError):
            pipeline.compress_dataset(small_freqnet)
        with pytest.raises(RuntimeError):
            _ = pipeline.table

    def test_fit_returns_self_and_designs_table(self, fitted_pipeline):
        assert fitted_pipeline.is_fitted
        assert fitted_pipeline.table.values.shape == (8, 8)
        assert fitted_pipeline.statistics.block_count > 0

    def test_fit_statistics_direct(self, small_freqnet):
        from repro.analysis.frequency import analyze_dataset

        statistics = analyze_dataset(small_freqnet)
        pipeline = DeepNJpeg().fit_statistics(statistics)
        assert pipeline.is_fitted

    def test_table_reflects_dataset_statistics(self, fitted_pipeline):
        # The DC band (largest std) must receive the minimum step.
        assert (
            fitted_pipeline.table.values[0, 0]
            == fitted_pipeline.config.q_min
        )


class TestCompression:
    def test_single_grayscale_image(self, fitted_pipeline, small_freqnet):
        result = fitted_pipeline.compress(small_freqnet.images[0])
        assert result.reconstructed.shape == small_freqnet.images[0].shape
        assert result.total_bytes > 0

    def test_single_rgb_image(self, fitted_pipeline, rng):
        image = np.clip(rng.normal(128, 30, (24, 24, 3)), 0, 255)
        result = fitted_pipeline.compress(image)
        assert result.reconstructed.shape == image.shape

    def test_rejects_bad_shape(self, fitted_pipeline):
        with pytest.raises(ValueError):
            fitted_pipeline.compress(np.zeros((4, 4, 4)))

    def test_dataset_compression_beats_standard_jpeg_at_qf100(
        self, fitted_pipeline, small_freqnet
    ):
        deepn = fitted_pipeline.compress_dataset(small_freqnet)
        original = JpegCompressor(100).compress_dataset(small_freqnet)
        assert deepn.total_bytes < original.total_bytes
        assert deepn.method == "DeepN-JPEG"

    def test_deepn_preserves_texture_band_better_than_qf20(
        self, fitted_pipeline, small_freqnet
    ):
        """The core claim at codec level: the dataset-adaptive table keeps
        the class-discriminative (7, 7) band that QF=20 JPEG wipes out."""
        from repro.jpeg.blocks import level_shift, partition_blocks
        from repro.jpeg.dct import block_dct2d

        textured = small_freqnet.images[small_freqnet.labels == 1]
        blocks = np.concatenate(
            [partition_blocks(level_shift(image))[0] for image in textured]
        )
        corner_coefficients = block_dct2d(blocks)[:, 7, 7]

        def surviving_fraction(table) -> float:
            quantized = np.round(corner_coefficients / table.values[7, 7])
            return float((quantized != 0).mean())

        deepn_survival = surviving_fraction(fitted_pipeline.table)
        qf20_survival = surviving_fraction(JpegCompressor(20).luma_table())
        # The designed table keeps the discriminative band for (almost) every
        # block; the HVS table at QF=20 quantizes it to zero.
        assert deepn_survival > 0.9
        assert qf20_survival < 0.1
        assert (
            fitted_pipeline.table.values[7, 7]
            < JpegCompressor(20).luma_table().values[7, 7]
        )


class TestCompressorAdapter:
    def test_requires_fitted_pipeline(self):
        with pytest.raises(ValueError):
            DeepNJpegCompressor(DeepNJpeg())

    def test_fit_classmethod(self, small_freqnet):
        compressor = DeepNJpegCompressor.fit(
            small_freqnet, DeepNJpegConfig(sampling_interval=3)
        )
        compressed = compressor.compress_dataset(small_freqnet)
        assert compressed.method == "DeepN-JPEG"

    def test_tables_exposed(self, fitted_pipeline):
        compressor = DeepNJpegCompressor(fitted_pipeline)
        np.testing.assert_array_equal(
            compressor.luma_table().values, fitted_pipeline.table.values
        )
        assert compressor.chroma_table().mean_step() >= (
            compressor.luma_table().mean_step()
        )
