"""Tests for the piece-wise linear mapping (Eq. 3)."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.analysis.frequency import FrequencyStatistics
from repro.core.plm import PAPER_IMAGENET_PARAMETERS, PiecewiseLinearMapping


def _paper_mapping():
    return PiecewiseLinearMapping.paper_imagenet()


class TestPaperParameters:
    def test_published_values(self):
        mapping = _paper_mapping()
        assert mapping.a == 255.0
        assert mapping.b == 80.0
        assert mapping.c == 240.0
        assert mapping.t1 == 20.0
        assert mapping.t2 == 60.0
        assert mapping.k1 == pytest.approx(9.75)
        assert mapping.k2 == 1.0
        assert mapping.k3 == 3.0
        assert mapping.q_min == 5.0

    def test_paper_segments_are_continuous_at_t1(self):
        mapping = _paper_mapping()
        # a - k1*T1 = 255 - 9.75*20 = 60 and b - k2*T1 = 80 - 20 = 60.
        hf_at_t1 = mapping.a - mapping.k1 * mapping.t1
        mf_at_t1 = mapping.b - mapping.k2 * mapping.t1
        assert hf_at_t1 == pytest.approx(mf_at_t1)

    def test_parameter_dict_matches(self):
        assert PAPER_IMAGENET_PARAMETERS["k1"] == pytest.approx(9.75)


class TestEquationThree:
    def test_segment_selection(self):
        mapping = _paper_mapping()
        assert mapping.segment_of(10.0) == "HF"
        assert mapping.segment_of(40.0) == "MF"
        assert mapping.segment_of(100.0) == "LF"

    def test_step_values_on_each_segment(self):
        mapping = _paper_mapping()
        assert mapping.quantization_step(10.0) == pytest.approx(255 - 97.5)
        assert mapping.quantization_step(40.0) == pytest.approx(80 - 40)
        assert mapping.quantization_step(70.0) == pytest.approx(240 - 210)

    def test_floor_applied(self):
        mapping = _paper_mapping()
        # Very energetic band: 240 - 3*400 < 0 -> clamped to Qmin.
        assert mapping.quantization_step(400.0) == 5.0

    def test_ceiling_applied(self):
        mapping = PiecewiseLinearMapping(
            a=500.0, b=80.0, c=240.0, k1=1.0, k2=1.0, k3=3.0,
            t1=20.0, t2=60.0, q_min=5.0,
        )
        assert mapping.quantization_step(0.0) == 255.0

    def test_vectorised_evaluation(self):
        mapping = _paper_mapping()
        stds = np.array([[0.0, 10.0], [40.0, 100.0]])
        steps = mapping.quantization_step(stds)
        assert steps.shape == (2, 2)
        assert steps[0, 0] == 255.0

    def test_low_energy_bands_get_larger_steps_within_hf(self):
        mapping = _paper_mapping()
        assert mapping.quantization_step(2.0) > mapping.quantization_step(15.0)

    def test_rejects_negative_std(self):
        with pytest.raises(ValueError):
            _paper_mapping().quantization_step(np.array([-1.0]))

    def test_validation(self):
        with pytest.raises(ValueError):
            PiecewiseLinearMapping(a=1, b=1, c=1, k1=-1, k2=0, k3=0,
                                   t1=1, t2=2)
        with pytest.raises(ValueError):
            PiecewiseLinearMapping(a=1, b=1, c=1, k1=0, k2=0, k3=0,
                                   t1=5, t2=2)
        with pytest.raises(ValueError):
            PiecewiseLinearMapping(a=1, b=1, c=1, k1=0, k2=0, k3=0,
                                   t1=1, t2=2, q_min=0.5)

    @settings(max_examples=50, deadline=None)
    @given(st.floats(min_value=0.0, max_value=1e4, allow_nan=False))
    def test_steps_always_within_bounds(self, std):
        mapping = _paper_mapping()
        step = float(mapping.quantization_step(std))
        assert mapping.q_min <= step <= mapping.q_max


class TestFromAnchors:
    def test_reproduces_paper_slopes(self):
        mapping = PiecewiseLinearMapping.from_anchors(
            t1=20.0, t2=60.0, q_max_step=255.0, q1=60.0, q2=20.0,
            q_min=5.0, k3=3.0, lf_intercept=240.0,
        )
        assert mapping.k1 == pytest.approx(9.75)
        assert mapping.k2 == pytest.approx(1.0)
        assert mapping.b == pytest.approx(80.0)
        assert mapping.c == pytest.approx(240.0)

    def test_default_lf_intercept_keeps_continuity(self):
        mapping = PiecewiseLinearMapping.from_anchors(t1=20.0, t2=60.0)
        just_above = float(mapping.quantization_step(60.0 + 1e-9))
        at_threshold = float(mapping.quantization_step(60.0))
        assert just_above == pytest.approx(at_threshold, abs=1e-6)

    def test_anchor_validation(self):
        with pytest.raises(ValueError):
            PiecewiseLinearMapping.from_anchors(t1=0.0, t2=60.0)
        with pytest.raises(ValueError):
            PiecewiseLinearMapping.from_anchors(t1=20.0, t2=60.0, q1=10.0,
                                                q2=20.0)

    def test_with_k3(self):
        mapping = _paper_mapping().with_k3(5.0)
        assert mapping.k3 == 5.0
        assert mapping.a == 255.0


class TestTableFromStatistics:
    def test_table_shape_and_bounds(self, small_freqnet):
        from repro.analysis.frequency import analyze_images

        statistics = analyze_images(small_freqnet.images)
        table = _paper_mapping().table_from_statistics(statistics)
        assert table.values.shape == (8, 8)
        assert table.values.min() >= 5
        assert table.values.max() <= 255

    def test_high_energy_bands_get_small_steps(self):
        std = np.full((8, 8), 1.0)
        std[0, 0] = 500.0
        std[1, 1] = 300.0
        statistics = FrequencyStatistics(std, np.zeros((8, 8)), 1, 1)
        table = _paper_mapping().table_from_statistics(statistics)
        assert table.values[0, 0] == 5
        assert table.values[1, 1] == 5
        assert table.values[7, 7] > 200
