"""Tests for the DeepN-JPEG table designer."""

import numpy as np
import pytest

from repro.analysis.frequency import FrequencyStatistics, analyze_dataset
from repro.core.config import DeepNJpegConfig
from repro.core.table_design import DeepNJpegTableDesigner


@pytest.fixture(scope="module")
def freqnet_statistics(small_freqnet):
    return analyze_dataset(small_freqnet, interval=1)


class TestThresholds:
    def test_thresholds_come_from_ranking(self, freqnet_statistics):
        designer = DeepNJpegTableDesigner()
        t1, t2 = designer.thresholds_from_statistics(freqnet_statistics)
        sorted_std = np.sort(freqnet_statistics.std, axis=None)[::-1]
        assert t2 == pytest.approx(sorted_std[5])
        assert t1 == pytest.approx(sorted_std[27])
        assert t1 < t2

    def test_degenerate_statistics_handled(self):
        statistics = FrequencyStatistics(
            np.zeros((8, 8)), np.zeros((8, 8)), 1, 1
        )
        designer = DeepNJpegTableDesigner()
        t1, t2 = designer.thresholds_from_statistics(statistics)
        assert 0 < t1 < t2


class TestDesign:
    def test_design_produces_consistent_artifacts(self, freqnet_statistics):
        result = DeepNJpegTableDesigner().design(freqnet_statistics)
        assert result.table.values.shape == (8, 8)
        assert result.chroma_table.values.shape == (8, 8)
        assert result.statistics is freqnet_statistics
        assert result.segmentation.method == "magnitude"

    def test_lf_bands_get_floor_steps(self, freqnet_statistics):
        config = DeepNJpegConfig(q_min=5.0)
        result = DeepNJpegTableDesigner(config).design(freqnet_statistics)
        for band in result.segmentation.bands_in_group("LF")[:3]:
            # The highest-energy bands sit on (or near) the Qmin floor.
            assert result.table.values[band] <= config.q2

    def test_hf_bands_get_larger_steps_than_lf(self, freqnet_statistics):
        result = DeepNJpegTableDesigner().design(freqnet_statistics)
        lf_steps = [
            result.table.values[band]
            for band in result.segmentation.bands_in_group("LF")
        ]
        hf_steps = [
            result.table.values[band]
            for band in result.segmentation.bands_in_group("HF")
        ]
        assert np.mean(hf_steps) > np.mean(lf_steps)

    def test_chroma_table_scaled_up(self, freqnet_statistics):
        config = DeepNJpegConfig(chroma_scale=2.0)
        result = DeepNJpegTableDesigner(config).design(freqnet_statistics)
        assert result.chroma_table.mean_step() >= result.table.mean_step()

    def test_dc_band_protected(self, freqnet_statistics):
        """The DC band has by far the largest standard deviation, so the
        design must give it (close to) the minimum step — quantizing DC
        aggressively destroys every class."""
        config = DeepNJpegConfig()
        result = DeepNJpegTableDesigner(config).design(freqnet_statistics)
        assert result.table.values[0, 0] == config.q_min

    def test_larger_q_anchors_give_more_aggressive_tables(self, freqnet_statistics):
        gentle = DeepNJpegTableDesigner(
            DeepNJpegConfig(q1=40.0, q2=15.0)
        ).design(freqnet_statistics)
        aggressive = DeepNJpegTableDesigner(
            DeepNJpegConfig(q1=120.0, q2=60.0)
        ).design(freqnet_statistics)
        assert aggressive.table.mean_step() > gentle.table.mean_step()
