"""Tests for the Dataset container and splitting."""

import numpy as np
import pytest

from repro.data.dataset import Dataset, train_test_split


def _make_dataset(samples_per_class=5, classes=3, size=8, seed=0):
    rng = np.random.default_rng(seed)
    images = rng.uniform(0, 255, (samples_per_class * classes, size, size))
    labels = np.repeat(np.arange(classes), samples_per_class)
    return Dataset(images, labels, [f"class{i}" for i in range(classes)])


class TestDataset:
    def test_basic_properties(self):
        dataset = _make_dataset()
        assert len(dataset) == 15
        assert dataset.num_classes == 3
        assert dataset.image_shape == (8, 8)
        assert dataset.uncompressed_bytes() == 15 * 64

    def test_validation(self):
        with pytest.raises(ValueError):
            Dataset(np.zeros((2, 8, 8)), np.array([0]), ["a"])
        with pytest.raises(ValueError):
            Dataset(np.zeros((2, 8, 8)), np.array([0, 5]), ["a"])
        with pytest.raises(ValueError):
            Dataset(np.zeros((2, 8)), np.array([0, 0]), ["a"])
        with pytest.raises(ValueError):
            Dataset(np.zeros((2, 8, 8)), np.array([0, 0]), [])

    def test_subset(self):
        dataset = _make_dataset()
        subset = dataset.subset(np.array([0, 5, 10]))
        assert len(subset) == 3
        np.testing.assert_array_equal(subset.labels, [0, 1, 2])

    def test_indices_of_class(self):
        dataset = _make_dataset()
        indices = dataset.indices_of_class(1)
        assert np.all(dataset.labels[indices] == 1)
        with pytest.raises(ValueError):
            dataset.indices_of_class(7)

    def test_class_counts(self):
        dataset = _make_dataset(samples_per_class=4, classes=2)
        np.testing.assert_array_equal(dataset.class_counts(), [4, 4])

    def test_with_images_keeps_labels(self):
        dataset = _make_dataset()
        replaced = dataset.with_images(np.zeros_like(dataset.images))
        np.testing.assert_array_equal(replaced.labels, dataset.labels)
        assert np.all(replaced.images == 0)
        with pytest.raises(ValueError):
            dataset.with_images(np.zeros((3, 8, 8)))

    def test_color_dataset_supported(self):
        images = np.zeros((4, 8, 8, 3))
        dataset = Dataset(images, np.zeros(4, dtype=int), ["only"])
        assert dataset.uncompressed_bytes() == 4 * 8 * 8 * 3


class TestTrainTestSplit:
    def test_stratified_counts(self):
        dataset = _make_dataset(samples_per_class=8, classes=4)
        train, test = train_test_split(dataset, test_fraction=0.25, seed=0)
        assert np.all(test.class_counts() == 2)
        assert np.all(train.class_counts() == 6)
        assert len(train) + len(test) == len(dataset)

    def test_no_overlap(self):
        dataset = _make_dataset(samples_per_class=6)
        train, test = train_test_split(dataset, test_fraction=0.3, seed=1)
        train_hashes = {image.tobytes() for image in train.images}
        test_hashes = {image.tobytes() for image in test.images}
        assert not train_hashes & test_hashes

    def test_deterministic_given_seed(self):
        dataset = _make_dataset(samples_per_class=6)
        first = train_test_split(dataset, seed=3)
        second = train_test_split(dataset, seed=3)
        np.testing.assert_array_equal(first[1].images, second[1].images)

    def test_rejects_bad_fraction(self):
        dataset = _make_dataset()
        with pytest.raises(ValueError):
            train_test_split(dataset, test_fraction=0.0)
        with pytest.raises(ValueError):
            train_test_split(dataset, test_fraction=1.0)

    def test_rejects_too_small_classes(self):
        dataset = _make_dataset(samples_per_class=1)
        with pytest.raises(ValueError):
            train_test_split(dataset, test_fraction=0.9)
