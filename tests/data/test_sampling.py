"""Tests for the Algorithm-1 class-interval sampling."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.data.dataset import Dataset
from repro.data.sampling import sample_class_representatives


def _dataset(samples_per_class, classes=4):
    total = samples_per_class * classes
    images = np.arange(total * 4, dtype=float).reshape(total, 2, 2)
    labels = np.repeat(np.arange(classes), samples_per_class)
    return Dataset(images, labels, [f"c{i}" for i in range(classes)])


class TestSampling:
    def test_interval_one_keeps_everything(self):
        dataset = _dataset(5)
        sampled = sample_class_representatives(dataset, interval=1)
        assert len(sampled) == len(dataset)

    def test_interval_sampling_count(self):
        dataset = _dataset(10)
        sampled = sample_class_representatives(dataset, interval=3)
        # ceil(10 / 3) = 4 per class.
        assert len(sampled) == 4 * 4

    def test_every_class_represented(self):
        dataset = _dataset(3, classes=5)
        sampled = sample_class_representatives(dataset, interval=10)
        assert set(np.unique(sampled.labels)) == set(range(5))

    def test_max_per_class_cap(self):
        dataset = _dataset(10)
        sampled = sample_class_representatives(dataset, interval=1, max_per_class=2)
        assert np.all(sampled.class_counts() == 2)

    def test_samples_come_from_correct_classes(self):
        dataset = _dataset(6)
        sampled = sample_class_representatives(dataset, interval=2)
        for label in range(dataset.num_classes):
            originals = {
                image.tobytes() for image in
                dataset.images[dataset.indices_of_class(label)]
            }
            picked = sampled.images[sampled.indices_of_class(label)]
            assert all(image.tobytes() in originals for image in picked)

    def test_rejects_invalid_arguments(self):
        dataset = _dataset(3)
        with pytest.raises(ValueError):
            sample_class_representatives(dataset, interval=0)
        with pytest.raises(ValueError):
            sample_class_representatives(dataset, max_per_class=0)

    @settings(max_examples=20, deadline=None)
    @given(st.integers(min_value=1, max_value=20),
           st.integers(min_value=1, max_value=10))
    def test_sample_size_bounds_property(self, samples_per_class, interval):
        dataset = _dataset(samples_per_class, classes=3)
        sampled = sample_class_representatives(dataset, interval=interval)
        per_class = sampled.class_counts()
        expected = -(-samples_per_class // interval)  # ceil division
        assert np.all(per_class == max(expected, 1))
