"""Tests for the FreqNet synthetic dataset generator."""

import numpy as np
import pytest

from repro.data.synthetic import (
    CLASS_GENERATORS,
    DEFAULT_CLASS_NAMES,
    FreqNetConfig,
    generate_freqnet,
    make_blob,
    make_textured_blob,
)
from repro.jpeg.blocks import level_shift, partition_blocks
from repro.jpeg.dct import block_dct2d


class TestConfig:
    def test_defaults_are_valid(self):
        config = FreqNetConfig()
        assert config.image_size % 8 == 0
        assert set(config.class_names) <= set(CLASS_GENERATORS)

    def test_rejects_invalid_values(self):
        with pytest.raises(ValueError):
            FreqNetConfig(image_size=4)
        with pytest.raises(ValueError):
            FreqNetConfig(images_per_class=0)
        with pytest.raises(ValueError):
            FreqNetConfig(noise_std=-1.0)
        with pytest.raises(ValueError):
            FreqNetConfig(class_names=("not_a_class",))


class TestGenerator:
    def test_shapes_and_labels(self, small_freqnet):
        assert small_freqnet.images.ndim == 3
        assert small_freqnet.images.shape[1:] == (32, 32)
        assert len(small_freqnet) == 6 * len(DEFAULT_CLASS_NAMES)
        assert np.all(small_freqnet.class_counts() == 6)

    def test_intensity_range(self, small_freqnet):
        assert small_freqnet.images.min() >= 0.0
        assert small_freqnet.images.max() <= 255.0

    def test_deterministic_given_seed(self):
        config = FreqNetConfig(images_per_class=3, seed=9)
        first = generate_freqnet(config)
        second = generate_freqnet(config)
        np.testing.assert_array_equal(first.images, second.images)
        np.testing.assert_array_equal(first.labels, second.labels)

    def test_different_seeds_differ(self):
        first = generate_freqnet(FreqNetConfig(images_per_class=3, seed=1))
        second = generate_freqnet(FreqNetConfig(images_per_class=3, seed=2))
        assert not np.allclose(first.images, second.images)

    def test_samples_within_class_vary(self, small_freqnet):
        blob_indices = small_freqnet.indices_of_class(0)
        images = small_freqnet.images[blob_indices]
        assert not np.allclose(images[0], images[1])

    def test_class_subset_selection(self):
        dataset = generate_freqnet(
            FreqNetConfig(images_per_class=2, class_names=("blob", "spots"))
        )
        assert dataset.num_classes == 2
        assert dataset.class_names == ["blob", "spots"]

    def test_all_generators_produce_valid_patterns(self, rng):
        for name, generator in CLASS_GENERATORS.items():
            pattern = generator(32, rng)
            assert pattern.shape == (32, 32), name
            assert np.isfinite(pattern).all(), name


class TestFrequencyStructure:
    """The property the whole reproduction depends on: class identity that
    lives in specific frequency bands."""

    def test_textured_blob_differs_from_blob_only_in_high_bands(self, rng):
        blob = make_blob(32, np.random.default_rng(0))
        textured = make_textured_blob(32, np.random.default_rng(0))
        difference = (textured - blob) * 255.0
        blocks, _ = partition_blocks(difference)
        coefficients = block_dct2d(blocks)
        low_energy = np.sum(coefficients[:, :4, :4] ** 2)
        high_energy = np.sum(coefficients[:, 4:, 4:] ** 2)
        assert high_energy > 5 * low_energy

    def test_blob_class_is_low_frequency(self, rng):
        blob = 255.0 * make_blob(32, rng)
        blocks, _ = partition_blocks(level_shift(blob))
        coefficients = block_dct2d(blocks)
        dc_and_low = np.sum(coefficients[:, :2, :2] ** 2)
        total = np.sum(coefficients ** 2)
        assert dc_and_low > 0.9 * total

    def test_checkerboard_has_substantial_ac_energy(self, rng):
        board = 255.0 * CLASS_GENERATORS["checkerboard"](32, rng)
        blocks, _ = partition_blocks(level_shift(board))
        coefficients = block_dct2d(blocks)
        ac_energy = np.sum(coefficients ** 2) - np.sum(coefficients[:, 0, 0] ** 2)
        dc_energy = np.sum(coefficients[:, 0, 0] ** 2)
        assert ac_energy > 0.1 * dc_energy

    def test_texture_band_has_elevated_dataset_std(self, small_freqnet):
        from repro.analysis.frequency import analyze_images

        statistics = analyze_images(small_freqnet.images)
        # The (7, 7) corner band carries the textured_blob signature, so its
        # standard deviation must beat the median AC band by a clear margin.
        ac_std = np.delete(statistics.std.reshape(-1), 0)
        assert statistics.std[7, 7] > 1.5 * np.median(ac_std)
