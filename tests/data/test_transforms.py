"""Tests for network input transforms."""

import numpy as np
import pytest

from repro.data.transforms import (
    images_to_nchw,
    normalize_images,
    prepare_for_network,
)


class TestImagesToNchw:
    def test_grayscale_gets_channel_axis(self):
        images = np.zeros((5, 16, 16))
        assert images_to_nchw(images).shape == (5, 1, 16, 16)

    def test_color_channels_move_first(self):
        images = np.zeros((5, 16, 16, 3))
        assert images_to_nchw(images).shape == (5, 3, 16, 16)

    def test_color_values_preserved(self, rng):
        images = rng.normal(size=(2, 4, 4, 3))
        nchw = images_to_nchw(images)
        np.testing.assert_allclose(nchw[1, 2], images[1, :, :, 2])

    def test_rejects_wrong_rank(self):
        with pytest.raises(ValueError):
            images_to_nchw(np.zeros((16, 16)))


class TestNormalize:
    def test_range_mapping(self):
        images = np.array([0.0, 127.5, 255.0])
        np.testing.assert_allclose(normalize_images(images), [-1.0, 0.0, 1.0])

    def test_rejects_non_positive_scale(self):
        with pytest.raises(ValueError):
            normalize_images(np.zeros(3), scale=0)


class TestPrepareForNetwork:
    def test_combined_transform(self):
        images = np.full((2, 8, 8), 255.0)
        prepared = prepare_for_network(images)
        assert prepared.shape == (2, 1, 8, 8)
        np.testing.assert_allclose(prepared, 1.0)
