"""The declarative experiment API: grid declaration, registry, driver.

The custom ``squares`` experiment registered here is the acceptance
check for third-party sweeps: declared axes + cell function only, yet it
gets caching, resume, sharding and progress from the framework — by
name, exactly like the built-in figures.
"""

import json

import pytest

from repro.experiments import ExperimentConfig
from repro.experiments import api
from repro.experiments.api import (
    Axis,
    Experiment,
    build_experiment,
    experiment_names,
    grid_cells,
    register_experiment,
    run_experiment,
    unregister_experiment,
)
from repro.experiments.store import ArtifactStore
from repro.runtime.executor import CACHE_MISS

MICRO = ExperimentConfig(
    images_per_class=6, image_size=16, epochs=2, batch_size=8
)


class TestAxis:
    def test_single_key_axis(self):
        axis = Axis("quality", (100, 50))
        assert axis.keys() == ("quality",)
        assert axis.cell_updates() == [{"quality": 100}, {"quality": 50}]

    def test_linked_key_axis(self):
        axis = Axis(("group", "step"), [("LF", 1.0), ("HF", 20.0)])
        assert axis.keys() == ("group", "step")
        assert axis.cell_updates() == [
            {"group": "LF", "step": 1.0},
            {"group": "HF", "step": 20.0},
        ]

    def test_linked_axis_arity_mismatch(self):
        axis = Axis(("a", "b"), [(1, 2, 3)])
        with pytest.raises(ValueError, match="expects 2-tuples"):
            axis.cell_updates()

    def test_duplicate_keys_within_one_axis_rejected(self):
        with pytest.raises(ValueError, match="duplicate key"):
            Axis(("group", "group"), [("LF", 5.0)])


class TestGridCells:
    def test_last_axis_fastest(self):
        cells = grid_cells(
            [Axis("model", ("A", "B")), Axis("method", ("x", "y"))]
        )
        assert cells == [
            {"model": "A", "method": "x"},
            {"model": "A", "method": "y"},
            {"model": "B", "method": "x"},
            {"model": "B", "method": "y"},
        ]

    def test_empty_axes_is_single_empty_cell(self):
        assert grid_cells([]) == [{}]

    def test_duplicate_axis_keys_rejected(self):
        with pytest.raises(ValueError, match="duplicate axis key"):
            grid_cells([Axis("k", (1,)), Axis(("k", "j"), [(2, 3)])])


class TestRegistry:
    def test_builtin_figures_registered(self):
        assert set(experiment_names()) >= {
            "fig2", "fig3", "fig5", "fig6", "fig7", "fig8", "fig9"
        }

    def test_duplicate_registration_raises(self):
        with pytest.raises(ValueError, match="already registered"):
            register_experiment("fig5", Experiment)

    def test_overwrite_allows_replacement(self):
        class Stub(Experiment):
            name = "stub-overwrite"

        try:
            register_experiment("stub-overwrite", Stub)
            register_experiment("stub-overwrite", Stub, overwrite=True)
        finally:
            unregister_experiment("stub-overwrite")

    def test_unknown_name_raises_keyerror_listing_known(self):
        with pytest.raises(KeyError) as exc_info:
            build_experiment("nope")
        message = str(exc_info.value)
        assert "nope" in message
        assert "fig5" in message  # the known experiments are listed

    def test_unregister_is_idempotent(self):
        unregister_experiment("never-registered")  # no error

    def test_build_returns_fresh_instance(self):
        assert build_experiment("fig5") is not build_experiment("fig5")


class SquaresExperiment(Experiment):
    """Minimal third-party experiment: n -> offset + n**2.

    The offset lives in the shared state (derived from the config seed),
    so the test also proves that state building, fork-sharding and
    caching compose for experiments the framework has never seen.
    """

    name = "squares"
    title = "Squares demo sweep"
    headers = ["n", "value"]
    defaults = {"values": (1, 2, 3, 4)}

    #: Cell-function invocation counter (visible in the parent process
    #: only for workers=1 runs; used to assert warm-store replays).
    calls = 0

    def axes(self, ctx):
        return [Axis("n", tuple(int(n) for n in ctx.params["values"]))]

    def build_state(self, key):
        return {"offset": key.dataset_seed * 100}

    def compute_cell(self, key, state, cell, extra):
        type(self).calls += 1
        return {"n": cell["n"], "value": state["offset"] + cell["n"] ** 2}

    def assemble(self, ctx, results, scalars):
        return list(results)


@pytest.fixture()
def squares_registered():
    register_experiment(SquaresExperiment.name, SquaresExperiment)
    SquaresExperiment.calls = 0
    try:
        yield
    finally:
        unregister_experiment(SquaresExperiment.name)


class TestCustomExperiment:
    def test_runnable_by_name_with_framework_caching_and_sharding(
        self, squares_registered, tmp_path
    ):
        store = ArtifactStore(str(tmp_path / "store"))
        expected = [
            {"n": n, "value": MICRO.dataset_seed * 100 + n * n}
            for n in (1, 2, 3, 4)
        ]

        cold = run_experiment(build_experiment("squares"), MICRO, store=store)
        assert cold == expected
        assert store.misses > 0 and len(store) == 4

        # Warm replay: entry-identical, zero cell recomputation.
        SquaresExperiment.calls = 0
        warm = run_experiment(build_experiment("squares"), MICRO, store=store)
        assert warm == expected
        assert SquaresExperiment.calls == 0
        assert store.misses == 4  # only the cold run missed

        # Sharded run (fresh store): identical results under workers=4.
        parallel_store = ArtifactStore(str(tmp_path / "parallel"))
        api.clear_state()
        parallel = run_experiment(
            build_experiment("squares"),
            MICRO.with_overrides(workers=4),
            store=parallel_store,
        )
        assert parallel == expected

    def test_unknown_parameter_rejected(self, squares_registered):
        with pytest.raises(TypeError, match="unknown parameter"):
            run_experiment(build_experiment("squares"), MICRO, valeus=(1,))

    def test_progress_counts_cached_and_fresh_cells(
        self, squares_registered, tmp_path
    ):
        store = ArtifactStore(str(tmp_path / "store"))
        ticks = []
        run_experiment(
            build_experiment("squares"), MICRO, store=store,
            progress=lambda done, total: ticks.append((done, total)),
        )
        assert ticks == [(0, 4), (1, 4), (2, 4), (3, 4), (4, 4)]

        # Partially warm: poison one cell file so exactly one recomputes.
        ticks.clear()
        removed = 0
        for path in sorted((tmp_path / "store").rglob("*.json"))[:1]:
            path.write_text("{corrupted", encoding="utf-8")
            removed += 1
        assert removed == 1
        run_experiment(
            build_experiment("squares"), MICRO, store=store,
            progress=lambda done, total: ticks.append((done, total)),
        )
        assert ticks == [(3, 4), (4, 4)]

        # Fully warm: one terminal tick so a --progress replay is not
        # silent.
        ticks.clear()
        run_experiment(
            build_experiment("squares"), MICRO, store=store,
            progress=lambda done, total: ticks.append((done, total)),
        )
        assert ticks == [(4, 4)]

    def test_resume_interleaves_cached_and_fresh_in_order(
        self, squares_registered, tmp_path
    ):
        store = ArtifactStore(str(tmp_path / "store"))
        run_experiment(
            build_experiment("squares"), MICRO, store=store, values=(1, 3)
        )
        # A superset sweep reuses the two completed cells and computes
        # only the new ones, in deterministic grid order.
        SquaresExperiment.calls = 0
        result = run_experiment(
            build_experiment("squares"), MICRO, store=store,
            values=(1, 2, 3, 4),
        )
        assert [entry["n"] for entry in result] == [1, 2, 3, 4]
        assert SquaresExperiment.calls == 2


class TestUnregisteredInstance:
    def test_unregistered_experiment_runs_and_leaves_no_registration(
        self, tmp_path
    ):
        """run_experiment pins the passed instance for cell dispatch."""
        store = ArtifactStore(str(tmp_path / "store"))
        experiment = SquaresExperiment()
        assert "squares" not in experiment_names()
        result = run_experiment(
            experiment, MICRO.with_overrides(workers=2), store=store,
            values=(2, 5),
        )
        assert [entry["n"] for entry in result] == [2, 5]
        # The temporary pin is removed once the run finishes.
        assert "squares" not in experiment_names()

    def test_shadowed_name_still_dispatches_to_passed_instance(
        self, squares_registered
    ):
        class Wrong(Experiment):
            name = "squares"

            def compute_cell(self, key, state, cell, extra):
                raise AssertionError("the wrong experiment computed a cell")

        # "squares" resolves to SquaresExperiment in the registry, but
        # the instance passed to run_experiment must win for its cells.
        passed = SquaresExperiment()
        result = run_experiment(passed, MICRO, values=(3,))
        assert result == [{"n": 3, "value": MICRO.dataset_seed * 100 + 9}]
        # The prior registration is restored afterwards.
        assert isinstance(build_experiment("squares"), SquaresExperiment)


class TestTableResult:
    def test_rows_and_format(self):
        result = api.TableResult(["a", "b"], [[1, 2.5], [3, 4.0]])
        assert result.rows() == [[1, 2.5], [3, 4.0]]
        table = result.format_table()
        assert "a" in table and "2.500" in table


class TestExperimentDeclarationErrors:
    def test_missing_name_rejected(self):
        with pytest.raises(ValueError, match="declares no name"):
            run_experiment(Experiment(), MICRO)

    def test_default_build_state_raises(self):
        class Stateless(Experiment):
            name = "stateless"

        with pytest.raises(RuntimeError, match="seeded by the parent"):
            Stateless().build_state(MICRO)


class TestConfigOverrides:
    def test_with_overrides_accepts_known_fields(self):
        assert MICRO.with_overrides(workers=3).workers == 3

    def test_with_overrides_rejects_unknown_fields(self):
        with pytest.raises(ValueError) as exc_info:
            MICRO.with_overrides(wrokers=3)
        message = str(exc_info.value)
        assert "wrokers" in message
        assert "workers" in message  # valid fields are listed

    def test_with_overrides_lists_all_unknowns(self):
        with pytest.raises(ValueError, match="'epohcs', 'wrokers'"):
            MICRO.with_overrides(wrokers=3, epohcs=1)


class TestCorruptedStore:
    def test_corrupted_artifact_is_a_miss_and_overwritten(
        self, tmp_path, caplog
    ):
        store = ArtifactStore(str(tmp_path / "store"))
        key = store.key({"cell": "x"})
        store.put(key, {"value": 1})
        path = tmp_path / "store" / key[:2] / f"{key}.json"
        path.write_text('{"value": 1', encoding="utf-8")  # truncated

        with caplog.at_level("WARNING", logger="repro.experiments.store"):
            assert store.get(key) is None
        assert store.misses == 1 and store.hits == 0
        assert any("corrupted" in record.message for record in caplog.records)

        # The poisoned file is atomically overwritten by the next put.
        store.put(key, {"value": 2})
        assert store.get(key) == {"value": 2}
        assert json.loads(path.read_text(encoding="utf-8")) == {"value": 2}

    def test_unwrapped_valid_json_is_a_sweep_cache_miss(
        self, tmp_path, caplog
    ):
        """Tampering that stays valid JSON must not crash the sweep."""
        from repro.experiments.store import SweepCache
        from repro.runtime.executor import CACHE_MISS

        store = ArtifactStore(str(tmp_path / "store"))
        cache = SweepCache(store, "figx", MICRO)
        cache.record({"cell": 1}, 42)
        key = cache.key({"cell": 1})
        path = tmp_path / "store" / key[:2] / f"{key}.json"
        path.write_text("[1, 2]", encoding="utf-8")  # valid JSON, no wrapper

        with caplog.at_level("WARNING", logger="repro.experiments.store"):
            assert cache.lookup({"cell": 1}) is CACHE_MISS
        assert store.misses == 1 and store.hits == 0
        assert any("wrapped" in record.message for record in caplog.records)
        # Recording again overwrites the tampered file and reads back.
        cache.record({"cell": 1}, 43)
        assert cache.lookup({"cell": 1}) == 43
