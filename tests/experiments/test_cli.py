"""The ``python -m repro`` command line: parsing, list, run, replay."""

import json

import pytest

from repro.cli import SCALES, build_parser, main
from repro.experiments import api
from repro.experiments.api import Experiment, register_experiment, unregister_experiment


class TestArgumentParsing:
    def test_subcommand_required(self, capsys):
        with pytest.raises(SystemExit) as exc_info:
            build_parser().parse_args([])
        assert exc_info.value.code == 2

    def test_run_defaults(self):
        arguments = build_parser().parse_args(["run", "fig5"])
        assert arguments.command == "run"
        assert arguments.experiment == "fig5"
        assert arguments.scale == "small"
        assert arguments.workers == 1
        assert arguments.artifacts_dir is None
        assert not arguments.as_json
        assert not arguments.progress

    def test_run_all_flags(self):
        arguments = build_parser().parse_args(
            ["run", "fig7", "--scale", "tiny", "--workers", "4",
             "--artifacts-dir", "store", "--json", "--progress"]
        )
        assert arguments.scale == "tiny"
        assert arguments.workers == 4
        assert arguments.artifacts_dir == "store"
        assert arguments.as_json and arguments.progress

    def test_invalid_scale_rejected(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["run", "fig5", "--scale", "huge"])

    def test_fault_tolerance_flags_default_to_none(self):
        # None = "not given": only explicit flags override the config's
        # own defaults, so `repro run` stays on the legacy fast path.
        arguments = build_parser().parse_args(["run", "fig5"])
        assert arguments.on_error is None
        assert arguments.retries is None
        assert arguments.task_timeout is None

    def test_fault_tolerance_flags_parse(self):
        arguments = build_parser().parse_args(
            ["run", "fig5", "--on-error", "collect", "--retries", "3",
             "--task-timeout", "2.5"]
        )
        assert arguments.on_error == "collect"
        assert arguments.retries == 3
        assert arguments.task_timeout == 2.5

    def test_unknown_error_policy_rejected(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(
                ["run", "fig5", "--on-error", "explode"]
            )

    def test_invalid_retries_exits_2(self, capsys):
        assert main(["run", "fig5", "--retries", "-1"]) == 2
        assert "retries" in capsys.readouterr().err

    def test_replay_requires_artifacts_dir(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["replay", "fig5"])

    def test_scales_cover_presets(self):
        assert set(SCALES) == {"micro", "tiny", "small", "full"}
        config = SCALES["micro"]()
        assert config.images_per_class == 6

    def test_micro_scale_matches_golden_fixture_scale(self):
        from tests.experiments.goldens import MICRO

        assert SCALES["micro"]() == MICRO


class TestPluginModules:
    def test_env_named_module_registers_before_dispatch(
        self, tmp_path, monkeypatch, capsys
    ):
        (tmp_path / "plugin_sweeps.py").write_text(
            "from repro.experiments import api\n"
            "\n"
            "class PluginExp(api.Experiment):\n"
            "    name = 'plugin-exp'\n"
            "    title = 'Plugin demo'\n"
            "    headers = ['n']\n"
            "\n"
            "    def axes(self, ctx):\n"
            "        return [api.Axis('n', (1,))]\n"
            "\n"
            "    def build_state(self, key):\n"
            "        return {}\n"
            "\n"
            "    def compute_cell(self, key, state, cell, extra):\n"
            "        return [cell['n']]\n"
            "\n"
            "    def assemble(self, ctx, results, scalars):\n"
            "        return api.TableResult(self.headers, list(results))\n"
            "\n"
            "api.register_experiment(PluginExp.name, PluginExp)\n",
            encoding="utf-8",
        )
        monkeypatch.syspath_prepend(str(tmp_path))
        monkeypatch.setenv("REPRO_EXPERIMENT_MODULES", "plugin_sweeps")
        try:
            assert main(["list"]) == 0
            assert "plugin-exp" in capsys.readouterr().out
            assert main(["run", "plugin-exp", "--scale", "micro", "--json"]) == 0
            payload = json.loads(capsys.readouterr().out)
            assert payload["rows"] == [[1]]
        finally:
            unregister_experiment("plugin-exp")


class TestList:
    def test_lists_builtin_experiments(self, capsys):
        assert main(["list"]) == 0
        out = capsys.readouterr().out
        for name in ("fig2", "fig3", "fig5", "fig6", "fig7", "fig8", "fig9"):
            assert name in out
        assert "sensitivity" in out  # titles are shown


class TestRunAndReplay:
    def test_unknown_experiment_exits_2_listing_known(self, capsys):
        assert main(["run", "nope"]) == 2
        err = capsys.readouterr().err
        assert "nope" in err and "fig5" in err

    def test_run_replay_round_trip(self, tmp_path, capsys):
        store_dir = str(tmp_path / "store")
        base = ["fig3", "--scale", "micro", "--artifacts-dir", store_dir]

        assert main(["run", *base, "--progress"]) == 0
        captured = capsys.readouterr()
        assert "Removed HF bands" in captured.out
        assert "fig3: " in captured.err  # progress ticks
        assert "misses" in captured.err

        # Second invocation is a pure warm replay.
        api.clear_state()
        assert main(["replay", *base, "--json"]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["experiment"] == "fig3"
        assert payload["headers"][0] == "Removed HF bands"
        assert len(payload["rows"]) == 5
        assert payload["store"]["misses"] == 0
        assert payload["store"]["hits"] > 0

    def test_replay_of_cold_store_fails(self, tmp_path, capsys):
        store_dir = str(tmp_path / "cold")
        api.clear_state()
        assert main(
            ["replay", "fig3", "--scale", "micro", "--artifacts-dir", store_dir]
        ) == 1
        assert "not warm" in capsys.readouterr().err

    def test_every_registered_experiment_runs_by_name(self, tmp_path, capsys):
        """Acceptance: `python -m repro run <name>` works for all figures.

        One shared store so the fitted design and the embedded Fig. 5
        sweeps behind fig6/7/8/9 are computed once (as in the example
        loop).
        """
        store_dir = str(tmp_path / "store")
        for name in ("fig2", "fig3", "fig5", "fig6", "fig7", "fig8", "fig9"):
            api.clear_state()
            assert main(
                ["run", name, "--scale", "micro", "--artifacts-dir", store_dir,
                 "--json"]
            ) == 0, name
            payload = json.loads(capsys.readouterr().out)
            assert payload["experiment"] == name
            assert payload["rows"], name

    def test_custom_experiment_runnable_by_name(self, tmp_path, capsys):
        class CliSquares(Experiment):
            """The README "declaring a new experiment" template shape."""

            name = "cli-squares"
            title = "CLI demo"
            headers = ["n", "value"]
            defaults = {}

            def axes(self, ctx):
                return [api.Axis("n", (2, 3))]

            def build_state(self, key):
                return {}

            def compute_cell(self, key, state, cell, extra):
                return [cell["n"], cell["n"] ** 2]

            def assemble(self, ctx, results, scalars):
                return api.TableResult(self.headers, list(results))

        register_experiment(CliSquares.name, CliSquares)
        try:
            store_dir = str(tmp_path / "store")
            assert main(
                ["run", "cli-squares", "--scale", "micro", "--workers", "2",
                 "--artifacts-dir", store_dir, "--json"]
            ) == 0
            payload = json.loads(capsys.readouterr().out)
            assert payload["rows"] == [[2, 4], [3, 9]]
            assert payload["store"]["misses"] > 0
            # Warm replay by name, still through the CLI.
            assert main(
                ["replay", "cli-squares", "--scale", "micro",
                 "--artifacts-dir", store_dir, "--json"]
            ) == 0
            payload = json.loads(capsys.readouterr().out)
            assert payload["rows"] == [[2, 4], [3, 9]]
            assert payload["store"]["misses"] == 0
        finally:
            unregister_experiment(CliSquares.name)
