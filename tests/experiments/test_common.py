"""Tests for the shared experiment infrastructure."""

import pytest

from repro.core.baselines import JpegCompressor
from repro.experiments.common import (
    ExperimentConfig,
    format_table,
    make_splits,
    relative_compression_rate,
    train_classifier,
)


@pytest.fixture(scope="module")
def micro_config():
    return ExperimentConfig(
        images_per_class=6, image_size=16, epochs=2, batch_size=8
    )


class TestExperimentConfig:
    def test_presets(self):
        assert ExperimentConfig.tiny().images_per_class < (
            ExperimentConfig.small().images_per_class
        )
        assert ExperimentConfig.full().epochs >= ExperimentConfig.small().epochs

    def test_with_overrides(self):
        config = ExperimentConfig.tiny().with_overrides(epochs=3)
        assert config.epochs == 3
        assert config.images_per_class == ExperimentConfig.tiny().images_per_class

    def test_validation(self):
        with pytest.raises(ValueError):
            ExperimentConfig(images_per_class=2)
        with pytest.raises(ValueError):
            ExperimentConfig(model_name="LeNet")
        with pytest.raises(ValueError):
            ExperimentConfig(epochs=0)

    def test_input_shape(self):
        assert ExperimentConfig(image_size=16).input_shape() == (1, 16, 16)

    def test_fault_tolerance_knob_validation(self):
        with pytest.raises(ValueError):
            ExperimentConfig(on_error="explode")
        with pytest.raises(ValueError):
            ExperimentConfig(retries=-1)
        with pytest.raises(ValueError):
            ExperimentConfig(task_timeout=0)
        config = ExperimentConfig(
            on_error="collect", retries=5, task_timeout=1.5
        )
        assert config.on_error == "collect"

    def test_task_key_normalises_runtime_knobs(self):
        # None of the runtime knobs influence results, so none may
        # influence worker-state keys or store addresses.
        noisy = ExperimentConfig(
            workers=8, on_error="collect", retries=7, task_timeout=2.0
        )
        key = noisy.task_key()
        assert key == ExperimentConfig().task_key()
        assert key.workers == 1
        assert key.on_error == "fail-fast"
        assert key.retries == 2
        assert key.task_timeout is None


class TestSplitsAndTraining:
    def test_make_splits_stratified(self, micro_config):
        train, test = make_splits(micro_config)
        assert train.num_classes == test.num_classes
        assert len(train) > len(test)

    def test_train_classifier_runs_and_evaluates(self, micro_config):
        train, test = make_splits(micro_config)
        classifier = train_classifier(train, micro_config)
        accuracy = classifier.accuracy_on(test)
        assert 0.0 <= accuracy <= 1.0
        assert classifier.history.epochs == micro_config.epochs
        predictions = classifier.predictions_on(test)
        assert predictions.shape == (len(test),)

    def test_train_on_compressed_dataset(self, micro_config):
        train, test = make_splits(micro_config)
        compressed = JpegCompressor(50).compress_dataset(train)
        classifier = train_classifier(compressed, micro_config, epochs=1)
        assert classifier.history.epochs == 1

    def test_relative_compression_rate(self, micro_config):
        _, test = make_splits(micro_config)
        reference = JpegCompressor(100).compress_dataset(test)
        compressed = JpegCompressor(20).compress_dataset(test)
        ratio = relative_compression_rate(compressed, reference)
        assert ratio > 1.0
        assert relative_compression_rate(reference, reference) == 1.0


class TestFormatTable:
    def test_contains_headers_and_rows(self):
        table = format_table(["A", "B"], [["x", 1.23456], ["y", 2]])
        assert "A" in table and "B" in table
        assert "1.235" in table
        assert len(table.splitlines()) == 4

    def test_empty_rows(self):
        assert format_table(["A", "B"], []) == "A | B"
