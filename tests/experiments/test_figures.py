"""Integration tests: every figure experiment runs end to end at micro scale.

These tests verify the experiment plumbing (structure of the results, table
rendering, derived quantities), not the statistical conclusions — the
benchmarks and EXPERIMENTS.md cover those at a meaningful scale.
"""

import numpy as np
import pytest

from repro.experiments import (
    ExperimentConfig,
    fig2_motivation,
    fig3_feature_removal,
    fig5_band_sensitivity,
    fig6_k3_sweep,
    fig7_methods,
    fig8_generality,
    fig9_power,
)
from repro.experiments.design_flow import derive_design_config

#: Smallest configuration that still exercises every code path.
MICRO = ExperimentConfig(
    images_per_class=6, image_size=16, epochs=2, batch_size=8
)
#: Anchors reused across tests to avoid re-running the Fig. 5 sweeps.
FIXED_ANCHORS = {"q1": 60.0, "q2": 20.0, "q_min": 5.0}


class TestDesignFlow:
    def test_derive_from_fixed_anchors(self):
        config = derive_design_config(MICRO, anchors=FIXED_ANCHORS,
                                      safety_factor=1.0)
        assert config.q1 == 60.0
        assert config.q2 == 20.0
        assert config.q_min == 5.0

    def test_safety_factor_scales_anchors(self):
        config = derive_design_config(
            MICRO, anchors=FIXED_ANCHORS, safety_factor=0.5
        )
        assert config.q1 == 30.0
        assert config.q2 == 10.0

    def test_q_min_ceiling_applied(self):
        config = derive_design_config(
            MICRO, anchors={"q1": 100.0, "q2": 80.0, "q_min": 40.0},
            q_min_ceiling=8.0,
        )
        assert config.q_min == 8.0

    def test_invalid_inputs(self):
        with pytest.raises(ValueError):
            derive_design_config(MICRO, anchors={"q1": 10.0})
        with pytest.raises(ValueError):
            derive_design_config(MICRO, anchors=FIXED_ANCHORS, safety_factor=0.0)


class TestFig2:
    def test_runs_and_reports(self):
        result = fig2_motivation.run(MICRO, quality_factors=(100, 20))
        assert len(result.entries) == 2
        assert result.entries[0].quality == 100
        assert result.entries[0].compression_ratio == pytest.approx(1.0)
        assert result.entries[1].compression_ratio > 1.0
        curves = result.epoch_curves()
        assert len(curves[20]) == MICRO.epochs
        assert "QF=100" in result.format_table()
        assert np.isfinite(result.accuracy_drop_case1())


class TestFig3:
    def test_removal_operation_is_identity_for_zero(self, random_image):
        unchanged = fig3_feature_removal.remove_high_frequency_components(
            random_image, 0
        )
        np.testing.assert_allclose(unchanged, random_image)

    def test_removal_reduces_high_band_energy(self, random_image):
        from repro.analysis.frequency import analyze_images

        degraded = fig3_feature_removal.remove_high_frequency_components(
            random_image, 12
        )
        original_stats = analyze_images(random_image[None])
        degraded_stats = analyze_images(degraded[None])
        assert degraded_stats.std[7, 7] < 0.2 * max(original_stats.std[7, 7], 1.0)

    def test_removal_validates_arguments(self, random_image):
        with pytest.raises(ValueError):
            fig3_feature_removal.remove_high_frequency_components(
                random_image, 64
            )

    def test_runs_and_reports(self):
        result = fig3_feature_removal.run(MICRO, removed_components=(0, 6))
        assert len(result.entries) == 2
        assert result.entries[0].flipped_fraction == 0.0
        assert result.entries[1].mean_psnr > 20.0
        assert "Removed HF bands" in result.format_table()


class TestFig5:
    def test_runs_and_derives_anchors(self):
        sweeps = {"LF": (1, 5), "MF": (1, 40), "HF": (1, 80)}
        result = fig5_band_sensitivity.run(MICRO, step_sweeps=sweeps)
        assert len(result.entries) == 2 * 3 * 2
        anchors = result.derived_anchors()
        assert set(anchors) == {"q1", "q2", "q_min"}
        assert anchors["q_min"] <= anchors["q2"] <= anchors["q1"]
        assert "Segmentation" in result.format_table()

    def test_neutral_step_stops_at_first_drop(self):
        result = fig5_band_sensitivity.Fig5Result(baseline_accuracy=1.0)
        for step, accuracy in [(1, 1.0), (10, 1.0), (20, 0.5), (40, 1.0)]:
            result.entries.append(
                fig5_band_sensitivity.Fig5Entry(
                    method="magnitude", group="HF", step=float(step),
                    accuracy=accuracy, normalized_accuracy=accuracy,
                )
            )
        assert result.largest_neutral_step("magnitude", "HF") == 10.0

    def test_group_table_builder(self):
        from repro.analysis.bands import position_based_segmentation

        table = fig5_band_sensitivity.group_quantization_table(
            position_based_segmentation(), "HF", 40
        )
        assert table.values.max() == 40
        assert table.values.min() == 1


class TestFig6:
    def test_runs_and_selects_k3(self):
        result = fig6_k3_sweep.run(
            MICRO, k3_values=(1.0, 3.0), anchors=FIXED_ANCHORS
        )
        assert len(result.entries) == 2
        assert result.best_k3() in (1.0, 3.0)
        assert all(entry.compression_ratio > 1.0 for entry in result.entries)
        assert "LF slope" in result.format_table()


class TestFig7:
    @pytest.fixture(scope="class")
    def result(self):
        return fig7_methods.run(
            MICRO,
            deepn_config=derive_design_config(MICRO, anchors=FIXED_ANCHORS),
            rmhf_components=(3,),
            sameq_steps=(8,),
        )

    def test_candidate_set(self, result):
        methods = [entry.method for entry in result.entries]
        assert methods == ["Original", "RM-HF3", "SAME-Q8", "DeepN-JPEG"]

    def test_original_is_reference(self, result):
        assert result.original_entry().compression_ratio == pytest.approx(1.0)

    def test_deepn_has_best_compression(self, result):
        deepn_cr = result.deepn_entry().compression_ratio
        assert deepn_cr == max(entry.compression_ratio for entry in result.entries)

    def test_lookup_and_sizes(self, result):
        assert result.entry("RM-HF3").bytes_per_image > 0
        with pytest.raises(KeyError):
            result.entry("nope")
        sizes = result.bytes_per_image_by_method()
        assert set(sizes) == {"Original", "RM-HF3", "SAME-Q8", "DeepN-JPEG"}


class TestFig8:
    def test_runs_for_two_models(self):
        result = fig8_generality.run(
            MICRO,
            model_names=("AlexNet", "ResNet-34"),
            deepn_config=derive_design_config(MICRO, anchors=FIXED_ANCHORS),
            epochs=1,
        )
        assert result.models() == ["AlexNet", "ResNet-34"]
        assert len(result.entries) == 2 * 4
        accuracy = result.accuracy("AlexNet", "Original")
        assert 0.0 <= accuracy <= 1.0
        assert np.isfinite(result.accuracy_drop("AlexNet", "DeepN-JPEG"))
        with pytest.raises(KeyError):
            result.accuracy("AlexNet", "nope")


class TestFig9:
    def test_from_precomputed_sizes(self):
        result = fig9_power.run(
            MICRO,
            bytes_per_method={
                "Original": 1000.0, "RM-HF3": 950.0,
                "SAME-Q4": 700.0, "DeepN-JPEG": 300.0,
            },
        )
        assert result.normalized_power("Original") == pytest.approx(1.0)
        assert result.normalized_power("DeepN-JPEG") == pytest.approx(0.3)
        assert "Normalized power" in result.format_table()

    def test_power_ordering_matches_size_ordering(self):
        result = fig9_power.run(
            MICRO,
            bytes_per_method={"Original": 1000.0, "DeepN-JPEG": 250.0},
        )
        assert (
            result.normalized_power("DeepN-JPEG")
            < result.normalized_power("Original")
        )
