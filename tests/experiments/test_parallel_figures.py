"""Worker-count determinism of the experiment sweeps.

Every figure grid must produce identical results — entries, ordering,
trained-classifier accuracies — for ``workers=1`` and ``workers=4``.
The state memos are cleared between runs so the parallel run rebuilds
everything from the config instead of reusing the serial run's state.
"""

import pytest

from repro.experiments import (
    ExperimentConfig,
    fig2_motivation,
    fig3_feature_removal,
    fig5_band_sensitivity,
    fig6_k3_sweep,
    fig7_methods,
    fig8_generality,
    fig9_power,
)
from repro.experiments.design_flow import derive_design_config

#: Smallest configuration that still exercises every code path.
MICRO = ExperimentConfig(
    images_per_class=6, image_size=16, epochs=2, batch_size=8
)
MICRO_PARALLEL = MICRO.with_overrides(workers=4)
FIXED_ANCHORS = {"q1": 60.0, "q2": 20.0, "q_min": 5.0}


def test_workers_knob_validated():
    with pytest.raises(ValueError):
        ExperimentConfig(workers=-1)


def test_task_key_normalises_workers():
    assert MICRO_PARALLEL.task_key() == MICRO.task_key()
    assert MICRO_PARALLEL.task_key().workers == 1


def test_fig5_entries_identical_across_worker_counts():
    sweeps = {"LF": (1, 5), "MF": (1, 40), "HF": (1, 80)}
    serial = fig5_band_sensitivity.run(MICRO, step_sweeps=sweeps)
    fig5_band_sensitivity._STATE.clear()
    parallel = fig5_band_sensitivity.run(MICRO_PARALLEL, step_sweeps=sweeps)
    assert serial.baseline_accuracy == parallel.baseline_accuracy
    assert serial.entries == parallel.entries
    assert serial.derived_anchors() == parallel.derived_anchors()


def test_fig6_classifier_accuracies_identical_across_worker_counts():
    serial = fig6_k3_sweep.run(
        MICRO, k3_values=(1.0, 3.0), anchors=FIXED_ANCHORS
    )
    fig6_k3_sweep._STATE.clear()
    parallel = fig6_k3_sweep.run(
        MICRO_PARALLEL, k3_values=(1.0, 3.0), anchors=FIXED_ANCHORS
    )
    # Each worker trains its own classifier from the config seeds; the
    # resulting accuracies must match the in-process training exactly.
    assert serial.baseline_accuracy == parallel.baseline_accuracy
    assert serial.entries == parallel.entries


def test_fig2_entries_identical_across_worker_counts():
    serial = fig2_motivation.run(MICRO, quality_factors=(100, 20))
    fig2_motivation._STATE.clear()
    parallel = fig2_motivation.run(MICRO_PARALLEL, quality_factors=(100, 20))
    assert serial.entries == parallel.entries


def test_fig3_entries_identical_across_worker_counts():
    serial = fig3_feature_removal.run(MICRO, removed_components=(0, 6))
    fig3_feature_removal._STATE.clear()
    parallel = fig3_feature_removal.run(
        MICRO_PARALLEL, removed_components=(0, 6)
    )
    assert serial.entries == parallel.entries


def test_fig7_entries_identical_across_worker_counts():
    """fig7 is the one sweep that pickles live compressor objects
    (including a fitted DeepN-JPEG pipeline) into its tasks."""
    design = derive_design_config(MICRO, anchors=FIXED_ANCHORS)
    serial = fig7_methods.run(
        MICRO, deepn_config=design, rmhf_components=(3,), sameq_steps=(8,)
    )
    fig7_methods._STATE.clear()
    parallel = fig7_methods.run(
        MICRO_PARALLEL, deepn_config=design,
        rmhf_components=(3,), sameq_steps=(8,),
    )
    assert serial.entries == parallel.entries
    assert parallel.original_entry().compression_ratio == 1.0


def test_fig8_entries_identical_across_worker_counts():
    """fig8's state is seed-only (never rebuilt cold); the workers must
    see the parent's compressed datasets through the forked memo."""
    design = derive_design_config(MICRO, anchors=FIXED_ANCHORS)
    serial = fig8_generality.run(
        MICRO, model_names=("AlexNet",), deepn_config=design, epochs=1
    )
    parallel = fig8_generality.run(
        MICRO_PARALLEL, model_names=("AlexNet",), deepn_config=design,
        epochs=1,
    )
    assert serial.entries == parallel.entries


def test_fig9_entries_identical_across_worker_counts():
    design = derive_design_config(MICRO, anchors=FIXED_ANCHORS)
    serial = fig9_power.run(MICRO, deepn_config=design)
    fig9_power._STATE.clear()
    parallel = fig9_power.run(MICRO_PARALLEL, deepn_config=design)
    assert serial.entries == parallel.entries


def test_state_memos_released_after_sweeps():
    """Sweeps must not pin datasets/classifiers after returning."""
    fig5_band_sensitivity.run(
        MICRO, step_sweeps={"LF": (1,), "MF": (1,), "HF": (1,)}
    )
    assert fig5_band_sensitivity._STATE.is_empty()
    fig9_power.run(
        MICRO,
        bytes_per_method={"Original": 1000.0, "DeepN-JPEG": 250.0},
    )
    assert fig9_power._STATE.is_empty()
