"""The content-addressed artifact store and figure-sweep resume.

The headline contract: re-running any figure with the same configuration
and a warm store performs **zero codec-level recompression** — asserted
by poisoning the JPEG codecs' batch entry points during the second run —
and returns entry-for-entry identical results.
"""

import pytest

import repro.jpeg.codec as jpeg_codec
from repro.core.pipeline import DeepNJpeg
from repro.experiments import (
    fig2_motivation,
    fig3_feature_removal,
    fig5_band_sensitivity,
    fig6_k3_sweep,
    fig7_methods,
    fig8_generality,
    fig9_power,
)
from repro.experiments.common import ExperimentConfig
from repro.experiments.store import ArtifactStore, SweepCache, config_payload
from repro.runtime.executor import CACHE_MISS, map_tasks_resumable

#: Smallest configuration that still exercises every code path.
MICRO = ExperimentConfig(
    images_per_class=6, image_size=16, epochs=2, batch_size=8
)
#: Fixed anchors so the fig6/7/8 resume tests need no fig5 sweep.
FIXED_ANCHORS = {"q1": 60.0, "q2": 20.0, "q_min": 5.0}


@pytest.fixture()
def store(tmp_path):
    return ArtifactStore(str(tmp_path / "artifacts"))


@pytest.fixture()
def no_recompression(monkeypatch):
    """Make codec-level (re)compression and re-fitting an error."""

    def _activate():
        def poisoned(self, *args, **kwargs):
            raise AssertionError(
                "codec-level recompression ran during a warm-store replay"
            )

        def poisoned_fit(self, *args, **kwargs):
            raise AssertionError(
                "DeepN-JPEG was re-fitted during a warm-store replay"
            )

        monkeypatch.setattr(
            jpeg_codec.GrayscaleJpegCodec, "compress_batch", poisoned
        )
        monkeypatch.setattr(
            jpeg_codec.ColorJpegCodec, "compress_batch", poisoned
        )
        monkeypatch.setattr(jpeg_codec.GrayscaleJpegCodec, "compress", poisoned)
        monkeypatch.setattr(jpeg_codec.ColorJpegCodec, "compress", poisoned)
        monkeypatch.setattr(DeepNJpeg, "fit", poisoned_fit)

    return _activate


class TestArtifactStore:
    def test_put_get_round_trip(self, store):
        key = store.key({"figure": "x", "cell": 1})
        assert store.get(key) is None
        assert store.misses == 1
        store.put(key, {"value": [1.5, "two"]})
        assert key in store
        assert store.get(key) == {"value": [1.5, "two"]}
        assert store.hits == 1
        assert len(store) == 1

    def test_keys_are_content_addressed(self, store):
        first = store.key({"cell": {"a": 1, "b": 2}})
        second = store.key({"cell": {"b": 2, "a": 1}})
        assert first == second  # key order never matters
        assert first != store.key({"cell": {"a": 1, "b": 3}})

    def test_config_payload_normalises_workers(self):
        assert config_payload(MICRO) == config_payload(
            MICRO.with_overrides(workers=4)
        )

    def test_overwrite_is_atomic_replace(self, store):
        key = store.key({"cell": "x"})
        store.put(key, 1)
        store.put(key, 2)
        assert store.get(key) == 2
        assert len(store) == 1

    def _leftover_temp_files(self, store):
        import os

        return [
            name
            for _, _, files in os.walk(store.root)
            for name in files
            if name.endswith(".tmp")
        ]

    def test_put_unserialisable_payload_cleans_up(self, store):
        from repro.experiments.store import ArtifactStoreError

        key = store.key({"cell": "bad"})
        with pytest.raises(ArtifactStoreError, match=key) as exc_info:
            store.put(key, {"value": object()})
        assert isinstance(exc_info.value.__cause__, TypeError)
        assert self._leftover_temp_files(store) == []
        assert key not in store
        assert len(store) == 0

    def test_put_rename_failure_cleans_up(self, store, monkeypatch):
        # A full disk / permission error surfacing at the atomic rename:
        # the temp file must be removed and the error must name key+path.
        import errno
        import os

        from repro.experiments.store import ArtifactStoreError

        real_replace = os.replace

        def poisoned(src, dst, *args, **kwargs):
            if str(dst).startswith(store.root):
                raise OSError(errno.ENOSPC, "No space left on device")
            return real_replace(src, dst, *args, **kwargs)

        monkeypatch.setattr(os, "replace", poisoned)
        key = store.key({"cell": "enospc"})
        with pytest.raises(ArtifactStoreError, match="No space left"):
            store.put(key, {"value": 1})
        assert self._leftover_temp_files(store) == []
        assert key not in store

    def test_put_failure_never_clobbers_existing_artifact(
        self, store, monkeypatch
    ):
        import os

        from repro.experiments.store import ArtifactStoreError

        key = store.key({"cell": "keep"})
        store.put(key, {"value": "original"})
        monkeypatch.setattr(
            os, "replace",
            lambda *a, **k: (_ for _ in ()).throw(PermissionError("denied")),
        )
        with pytest.raises(ArtifactStoreError):
            store.put(key, {"value": "new"})
        monkeypatch.undo()
        assert store.get(key) == {"value": "original"}


class TestSweepCache:
    def test_none_store_always_misses(self):
        cache = SweepCache(None, "figx", MICRO)
        assert cache.lookup({"cell": 1}) is CACHE_MISS
        cache.record({"cell": 1}, 42)  # dropped, no error
        assert cache.lookup_many([{"cell": 1}]) == [CACHE_MISS]

    def test_payload_codecs_applied(self, store):
        cache = SweepCache(
            store, "figx", MICRO,
            from_payload=tuple, to_payload=list,
        )
        cache.record({"cell": 1}, ("a", 2))
        assert cache.lookup({"cell": 1}) == ("a", 2)

    def test_none_values_are_cacheable(self, store):
        # A stored null must read back as a hit, not as CACHE_MISS.
        cache = SweepCache(store, "figx", MICRO)
        cache.record({"cell": "optional"}, None)
        assert cache.lookup({"cell": "optional"}) is None
        assert store.misses == 0

    def test_figure_name_partitions_keys(self, store):
        first = SweepCache(store, "figx", MICRO)
        second = SweepCache(store, "figy", MICRO)
        first.record({"cell": 1}, "x-value")
        assert second.lookup({"cell": 1}) is CACHE_MISS


class TestMapTasksResumable:
    def test_mixed_cache_hits(self):
        calls = []

        def square(task):
            calls.append(task)
            return task * task

        cached = [CACHE_MISS, 400, CACHE_MISS]
        fresh = []
        results = map_tasks_resumable(
            square, [1, 20, 3], cached,
            on_result=lambda index, value: fresh.append((index, value)),
        )
        assert results == [1, 400, 9]
        assert calls == [1, 3]  # the cached task never ran
        assert fresh == [(0, 1), (2, 9)]

    def test_length_mismatch_rejected(self):
        with pytest.raises(ValueError, match="parallel"):
            map_tasks_resumable(lambda t: t, [1, 2], [CACHE_MISS])

    def test_none_results_are_cacheable(self):
        results = map_tasks_resumable(lambda t: None, [1], [CACHE_MISS])
        assert results == [None]

    def test_results_persist_as_they_complete(self):
        """A sweep that dies mid-run keeps its already-finished cells."""
        recorded = []

        def flaky(task):
            if task == 3:
                raise RuntimeError("boom")
            return task * 10

        with pytest.raises(RuntimeError, match="boom"):
            map_tasks_resumable(
                flaky, [1, 2, 3, 4], [CACHE_MISS] * 4,
                on_result=lambda index, value: recorded.append((index, value)),
            )
        # Everything finished before the failure was recorded, so a
        # re-run with those entries cached resumes past them.
        assert recorded == [(0, 10), (1, 20)]


def _assert_fig_entries_equal(left, right):
    assert len(left) == len(right)
    for first, second in zip(left, right):
        assert first == second


class TestFigureResume:
    """Cold run populates the store; warm run replays without codecs."""

    def test_fig2(self, store, no_recompression):
        cold = fig2_motivation.run(MICRO, quality_factors=(100, 50), store=store)
        warm_store = ArtifactStore(store.root)
        no_recompression()
        warm = fig2_motivation.run(
            MICRO, quality_factors=(100, 50), store=warm_store
        )
        _assert_fig_entries_equal(warm.entries, cold.entries)
        assert warm_store.misses == 0

    def test_fig3(self, store, no_recompression):
        cold = fig3_feature_removal.run(
            MICRO, removed_components=(0, 3), store=store
        )
        warm_store = ArtifactStore(store.root)
        no_recompression()
        warm = fig3_feature_removal.run(
            MICRO, removed_components=(0, 3), store=warm_store
        )
        _assert_fig_entries_equal(warm.entries, cold.entries)
        assert warm_store.misses == 0

    def test_fig5(self, store, no_recompression):
        sweeps = {"HF": (1, 20), "LF": (1, 3)}
        cold = fig5_band_sensitivity.run(MICRO, step_sweeps=sweeps, store=store)
        warm_store = ArtifactStore(store.root)
        no_recompression()
        warm = fig5_band_sensitivity.run(
            MICRO, step_sweeps=sweeps, store=warm_store
        )
        _assert_fig_entries_equal(warm.entries, cold.entries)
        assert warm.baseline_accuracy == cold.baseline_accuracy
        assert warm_store.misses == 0

    def test_fig5_partial_resume_only_runs_missing_cells(self, store):
        sweeps = {"HF": (1, 20)}
        fig5_band_sensitivity.run(MICRO, step_sweeps=sweeps, store=store)
        extended = {"HF": (1, 20, 40)}
        resumed_store = ArtifactStore(store.root)
        result = fig5_band_sensitivity.run(
            MICRO, step_sweeps=extended, store=resumed_store
        )
        # 2 methods x 2 cached steps (+ baseline) hit; the new step misses.
        assert resumed_store.hits >= 5
        assert len(result.entries) == 6
        reference = fig5_band_sensitivity.run(MICRO, step_sweeps=extended)
        _assert_fig_entries_equal(result.entries, reference.entries)

    def test_fig5_supplied_classifier_bypasses_store(self, store):
        from repro.experiments.common import make_splits, train_classifier

        train_dataset, _ = make_splits(MICRO)
        classifier = train_classifier(train_dataset, MICRO)
        fig5_band_sensitivity.run(
            MICRO, step_sweeps={"HF": (1,)}, classifier=classifier,
            store=store,
        )
        assert len(store) == 0

    def test_fig6(self, store, no_recompression):
        cold = fig6_k3_sweep.run(
            MICRO, k3_values=(2.0, 3.0), anchors=FIXED_ANCHORS, store=store
        )
        warm_store = ArtifactStore(store.root)
        no_recompression()
        warm = fig6_k3_sweep.run(
            MICRO, k3_values=(2.0, 3.0), anchors=FIXED_ANCHORS,
            store=warm_store,
        )
        _assert_fig_entries_equal(warm.entries, cold.entries)
        assert warm.baseline_accuracy == cold.baseline_accuracy
        assert warm_store.misses == 0

    def test_fig7(self, store, no_recompression):
        cold = fig7_methods.run(
            MICRO, anchors=FIXED_ANCHORS, rmhf_components=(3,),
            sameq_steps=(4,), store=store,
        )
        warm_store = ArtifactStore(store.root)
        no_recompression()
        warm = fig7_methods.run(
            MICRO, anchors=FIXED_ANCHORS, rmhf_components=(3,),
            sameq_steps=(4,), store=warm_store,
        )
        _assert_fig_entries_equal(warm.entries, cold.entries)
        assert warm_store.misses == 0

    def test_fig8(self, store, no_recompression):
        cold = fig8_generality.run(
            MICRO, model_names=("AlexNet",), anchors=FIXED_ANCHORS,
            epochs=1, store=store,
        )
        warm_store = ArtifactStore(store.root)
        no_recompression()
        warm = fig8_generality.run(
            MICRO, model_names=("AlexNet",), anchors=FIXED_ANCHORS,
            epochs=1, store=warm_store,
        )
        _assert_fig_entries_equal(warm.entries, cold.entries)
        assert warm_store.misses == 0

    def test_fig9(self, store, no_recompression):
        cold = fig9_power.run(MICRO, store=store)
        warm_store = ArtifactStore(store.root)
        no_recompression()
        warm = fig9_power.run(MICRO, store=warm_store)
        _assert_fig_entries_equal(warm.entries, cold.entries)
        assert warm_store.misses == 0

    def test_workers_share_the_store(self, store):
        """A parallel cold run populates the same addresses serial reads."""
        sweeps = {"HF": (1, 20), "MF": (1, 10)}
        parallel = fig5_band_sensitivity.run(
            MICRO.with_overrides(workers=2), step_sweeps=sweeps, store=store
        )
        warm_store = ArtifactStore(store.root)
        serial = fig5_band_sensitivity.run(
            MICRO, step_sweeps=sweeps, store=warm_store
        )
        _assert_fig_entries_equal(serial.entries, parallel.entries)
        assert warm_store.misses == 0
