"""Tests for the bit-level writer/reader and magnitude coding."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.jpeg.bitstream import (
    BitReader,
    BitWriter,
    decode_magnitude,
    encode_magnitude,
    magnitude_category,
)


class TestBitWriter:
    def test_writes_full_bytes(self):
        writer = BitWriter()
        writer.write_bits(0xAB, 8)
        assert writer.getvalue() == bytes([0xAB])

    def test_pads_final_byte_with_ones(self):
        writer = BitWriter()
        writer.write_bits(0b101, 3)
        assert writer.getvalue() == bytes([0b10111111])

    def test_byte_stuffing_after_ff(self):
        writer = BitWriter()
        writer.write_bits(0xFF, 8)
        writer.write_bits(0x01, 8)
        assert writer.getvalue() == bytes([0xFF, 0x00, 0x01])

    def test_no_stuffing_when_disabled(self):
        writer = BitWriter(byte_stuffing=False)
        writer.write_bits(0xFF, 8)
        assert writer.getvalue() == bytes([0xFF])

    def test_zero_length_write_is_noop(self):
        writer = BitWriter()
        writer.write_bits(0, 0)
        assert writer.getvalue() == b""

    def test_rejects_value_too_large_for_length(self):
        writer = BitWriter()
        with pytest.raises(ValueError):
            writer.write_bits(4, 2)

    def test_bit_length_tracks_payload(self):
        writer = BitWriter()
        writer.write_bits(0b1, 1)
        writer.write_bits(0b1111111, 7)
        writer.write_bits(0b101, 3)
        assert writer.bit_length == 11


class TestBitReader:
    def test_reads_back_written_bits(self):
        writer = BitWriter()
        writer.write_bits(0b110, 3)
        writer.write_bits(0b01, 2)
        writer.write_bits(0xAB, 8)
        reader = BitReader(writer.getvalue())
        assert reader.read_bits(3) == 0b110
        assert reader.read_bits(2) == 0b01
        assert reader.read_bits(8) == 0xAB

    def test_skips_stuffed_zero_bytes(self):
        writer = BitWriter()
        writer.write_bits(0xFF, 8)
        writer.write_bits(0x12, 8)
        reader = BitReader(writer.getvalue())
        assert reader.read_bits(8) == 0xFF
        assert reader.read_bits(8) == 0x12

    def test_raises_on_exhaustion(self):
        reader = BitReader(b"\x00")
        reader.read_bits(8)
        with pytest.raises(EOFError):
            reader.read_bit()

    @settings(max_examples=50, deadline=None)
    @given(st.lists(st.tuples(st.integers(0, 2 ** 12 - 1), st.integers(12, 16)),
                    min_size=1, max_size=30))
    def test_roundtrip_property(self, chunks):
        writer = BitWriter()
        for value, length in chunks:
            writer.write_bits(value, length)
        reader = BitReader(writer.getvalue())
        for value, length in chunks:
            assert reader.read_bits(length) == value


class TestMagnitudeCoding:
    @pytest.mark.parametrize(
        "value, category",
        [(0, 0), (1, 1), (-1, 1), (2, 2), (3, 2), (-3, 2), (4, 3), (7, 3),
         (255, 8), (-255, 8), (1023, 10)],
    )
    def test_category(self, value, category):
        assert magnitude_category(value) == category

    @pytest.mark.parametrize("value", [0, 1, -1, 5, -5, 127, -127, 1000, -1000])
    def test_encode_decode_roundtrip(self, value):
        bits, category = encode_magnitude(value)
        assert decode_magnitude(bits, category) == value

    def test_negative_values_use_ones_complement(self):
        bits, category = encode_magnitude(-2)
        assert category == 2
        assert bits == 0b01

    @settings(max_examples=100, deadline=None)
    @given(st.integers(min_value=-(2 ** 15) + 1, max_value=2 ** 15 - 1))
    def test_roundtrip_property(self, value):
        bits, category = encode_magnitude(value)
        assert decode_magnitude(bits, category) == value
        assert 0 <= bits < (1 << max(category, 1))
