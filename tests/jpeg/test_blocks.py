"""Tests for block partitioning and level shifting."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.jpeg.blocks import (
    assemble_blocks,
    inverse_level_shift,
    level_shift,
    pad_to_block_multiple,
    partition_blocks,
)


class TestPadding:
    def test_multiple_of_eight_unchanged(self):
        channel = np.ones((16, 24))
        assert pad_to_block_multiple(channel).shape == (16, 24)

    def test_pads_up_to_next_multiple(self):
        channel = np.ones((17, 25))
        assert pad_to_block_multiple(channel).shape == (24, 32)

    def test_padding_replicates_edges(self):
        channel = np.arange(9, dtype=float).reshape(3, 3)
        padded = pad_to_block_multiple(channel)
        assert padded[7, 0] == channel[2, 0]
        assert padded[0, 7] == channel[0, 2]

    def test_rejects_empty(self):
        with pytest.raises(ValueError):
            pad_to_block_multiple(np.zeros((0, 8)))


class TestPartitionAssemble:
    def test_roundtrip_exact_multiple(self, rng):
        channel = rng.normal(size=(24, 16))
        blocks, grid = partition_blocks(channel)
        assert blocks.shape == (6, 8, 8)
        assert grid == (3, 2)
        restored = assemble_blocks(blocks, grid, channel.shape)
        np.testing.assert_allclose(restored, channel)

    def test_roundtrip_with_padding(self, rng):
        channel = rng.normal(size=(19, 21))
        blocks, grid = partition_blocks(channel)
        restored = assemble_blocks(blocks, grid, channel.shape)
        np.testing.assert_allclose(restored, channel)

    def test_block_ordering_is_row_major(self):
        channel = np.zeros((16, 16))
        channel[0:8, 8:16] = 5.0
        blocks, _ = partition_blocks(channel)
        assert np.all(blocks[1] == 5.0)
        assert np.all(blocks[0] == 0.0)

    def test_assemble_validates_shape(self):
        with pytest.raises(ValueError):
            assemble_blocks(np.zeros((3, 8, 8)), (2, 2), (16, 16))

    @settings(max_examples=20, deadline=None)
    @given(
        st.integers(min_value=1, max_value=40),
        st.integers(min_value=1, max_value=40),
    )
    def test_roundtrip_property(self, height, width):
        channel = np.arange(height * width, dtype=float).reshape(height, width)
        blocks, grid = partition_blocks(channel)
        restored = assemble_blocks(blocks, grid, channel.shape)
        np.testing.assert_allclose(restored, channel)


class TestLevelShift:
    def test_shift_and_inverse(self):
        channel = np.array([[0.0, 128.0, 255.0]])
        shifted = level_shift(channel)
        np.testing.assert_allclose(shifted, [[-128.0, 0.0, 127.0]])
        np.testing.assert_allclose(inverse_level_shift(shifted), channel)

    def test_inverse_clips(self):
        assert inverse_level_shift(np.array([200.0]))[0] == 255.0
        assert inverse_level_shift(np.array([-200.0]))[0] == 0.0
