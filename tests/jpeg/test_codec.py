"""Tests for the end-to-end JPEG-style codecs."""

import numpy as np
import pytest

from repro.jpeg import (
    ColorJpegCodec,
    GrayscaleJpegCodec,
    QuantizationTable,
    psnr,
)


class TestGrayscaleCodec:
    def test_roundtrip_preserves_shape_and_range(self, random_image):
        codec = GrayscaleJpegCodec(QuantizationTable.standard_luminance(75))
        result = codec.compress(random_image)
        assert result.reconstructed.shape == random_image.shape
        assert result.reconstructed.min() >= 0.0
        assert result.reconstructed.max() <= 255.0

    def test_lossless_quantization_is_near_exact(self, smooth_image):
        codec = GrayscaleJpegCodec(QuantizationTable.flat(1))
        result = codec.compress(smooth_image)
        assert result.psnr(smooth_image) > 50.0

    def test_larger_steps_reduce_size_and_quality(self, random_image):
        fine = GrayscaleJpegCodec(QuantizationTable.flat(2)).compress(random_image)
        coarse = GrayscaleJpegCodec(QuantizationTable.flat(40)).compress(random_image)
        assert coarse.payload_bytes < fine.payload_bytes
        assert coarse.psnr(random_image) < fine.psnr(random_image)

    def test_smooth_images_compress_better_than_noise(self, random_image, smooth_image):
        codec = GrayscaleJpegCodec(QuantizationTable.standard_luminance(50))
        noisy = codec.compress(random_image)
        smooth = codec.compress(smooth_image[:32, :32])
        assert smooth.payload_bytes < noisy.payload_bytes

    def test_compression_ratio_accounts_for_header(self, random_image):
        codec = GrayscaleJpegCodec(QuantizationTable.standard_luminance(50))
        result = codec.compress(random_image)
        assert result.total_bytes == result.payload_bytes + result.header_bytes
        assert result.original_bytes == random_image.size
        assert result.compression_ratio < result.payload_compression_ratio

    def test_non_multiple_of_eight_dimensions(self, rng):
        image = np.clip(rng.normal(120, 30, (19, 27)), 0, 255)
        codec = GrayscaleJpegCodec(QuantizationTable.standard_luminance(60))
        result = codec.compress(image)
        assert result.reconstructed.shape == image.shape

    def test_quality_monotonic_in_psnr(self, random_image):
        results = [
            GrayscaleJpegCodec(
                QuantizationTable.standard_luminance(quality)
            ).compress(random_image)
            for quality in (20, 50, 90)
        ]
        psnrs = [result.psnr(random_image) for result in results]
        assert psnrs == sorted(psnrs)

    def test_optimized_huffman_never_larger(self, random_image):
        table = QuantizationTable.standard_luminance(50)
        standard = GrayscaleJpegCodec(table).compress(random_image)
        optimized = GrayscaleJpegCodec(table, optimize_huffman=True).compress(
            random_image
        )
        assert optimized.payload_bytes <= standard.payload_bytes

    def test_encode_decode_consistent_with_compress(self, random_image):
        codec = GrayscaleJpegCodec(QuantizationTable.standard_luminance(70))
        encoded = codec.encode(random_image)
        decoded = codec.decode(encoded)
        result = codec.compress(random_image)
        np.testing.assert_allclose(decoded, result.reconstructed)
        assert len(encoded.data) == result.payload_bytes

    def test_rejects_color_input(self, random_rgb_image):
        codec = GrayscaleJpegCodec(QuantizationTable.standard_luminance(50))
        with pytest.raises(ValueError):
            codec.compress(random_rgb_image)

    def test_constant_image_compresses_extremely_well(self):
        image = np.full((64, 64), 200.0)
        codec = GrayscaleJpegCodec(QuantizationTable.standard_luminance(50))
        result = codec.compress(image)
        assert result.payload_compression_ratio > 30.0
        assert result.psnr(image) > 40.0

    def test_optimized_huffman_stream_roundtrips_through_decode(self, random_image):
        codec = GrayscaleJpegCodec(
            QuantizationTable.standard_luminance(50), optimize_huffman=True
        )
        encoded = codec.encode(random_image)
        assert encoded.dc_huffman is not None
        assert encoded.ac_huffman is not None
        decoded = codec.decode(encoded)
        result = codec.compress(random_image)
        np.testing.assert_array_equal(decoded, result.reconstructed)
        assert len(encoded.data) == result.payload_bytes

    def test_standard_stream_carries_no_tables(self, random_image):
        codec = GrayscaleJpegCodec(QuantizationTable.standard_luminance(50))
        encoded = codec.encode(random_image)
        assert encoded.dc_huffman is None
        assert encoded.ac_huffman is None

    def test_compress_matches_explicit_decode(self, random_image):
        # compress() reconstructs straight from the quantized blocks;
        # decoding the stream must give the exact same image.
        codec = GrayscaleJpegCodec(QuantizationTable.standard_luminance(60))
        result = codec.compress(random_image)
        decoded = codec.decode(codec.encode(random_image))
        np.testing.assert_array_equal(decoded, result.reconstructed)


class TestGrayscaleBatch:
    def test_batch_matches_per_image_compress(self, rng):
        images = np.clip(rng.normal(128, 50, (6, 24, 24)), 0, 255)
        codec = GrayscaleJpegCodec(QuantizationTable.standard_luminance(50))
        batch = codec.compress_batch(images)
        assert len(batch) == 6
        for index, result in enumerate(batch):
            single = codec.compress(images[index])
            assert result.payload_bytes == single.payload_bytes
            assert result.header_bytes == single.header_bytes
            np.testing.assert_array_equal(
                result.reconstructed, single.reconstructed
            )

    def test_batch_with_padding_dimensions(self, rng):
        images = np.clip(rng.normal(128, 50, (3, 19, 27)), 0, 255)
        codec = GrayscaleJpegCodec(QuantizationTable.standard_luminance(60))
        batch = codec.compress_batch(images)
        for index, result in enumerate(batch):
            single = codec.compress(images[index])
            assert result.payload_bytes == single.payload_bytes
            np.testing.assert_array_equal(
                result.reconstructed, single.reconstructed
            )

    def test_batch_optimized_huffman_falls_back_per_image(self, rng):
        images = np.clip(rng.normal(128, 50, (3, 16, 16)), 0, 255)
        codec = GrayscaleJpegCodec(
            QuantizationTable.standard_luminance(50), optimize_huffman=True
        )
        batch = codec.compress_batch(images)
        for index, result in enumerate(batch):
            single = codec.compress(images[index])
            assert result.payload_bytes == single.payload_bytes

    def test_batch_rejects_single_image(self, random_image):
        codec = GrayscaleJpegCodec(QuantizationTable.standard_luminance(50))
        with pytest.raises(ValueError):
            codec.compress_batch(random_image)


class TestColorBatch:
    def _images(self, rng, count=4, height=24, width=24):
        return np.clip(
            rng.normal(128, 50, (count, height, width, 3)), 0, 255
        )

    @pytest.mark.parametrize("subsample", [True, False])
    def test_batch_matches_per_image_compress(self, rng, subsample):
        codec = ColorJpegCodec(
            QuantizationTable.standard_luminance(50),
            QuantizationTable.standard_chrominance(50),
            subsample_chroma=subsample,
        )
        images = self._images(rng)
        batch = codec.compress_batch(images)
        assert len(batch) == images.shape[0]
        for index, result in enumerate(batch):
            single = codec.compress(images[index])
            assert result.payload_bytes == single.payload_bytes
            assert result.header_bytes == single.header_bytes
            np.testing.assert_array_equal(
                result.reconstructed, single.reconstructed
            )

    def test_batch_with_odd_dimensions(self, rng):
        codec = ColorJpegCodec(QuantizationTable.standard_luminance(60))
        images = self._images(rng, count=3, height=19, width=27)
        batch = codec.compress_batch(images)
        for index, result in enumerate(batch):
            single = codec.compress(images[index])
            assert result.payload_bytes == single.payload_bytes
            np.testing.assert_array_equal(
                result.reconstructed, single.reconstructed
            )

    def test_batch_optimized_huffman_falls_back_per_image(self, rng):
        codec = ColorJpegCodec(
            QuantizationTable.standard_luminance(50), optimize_huffman=True
        )
        images = self._images(rng, count=2, height=16, width=16)
        batch = codec.compress_batch(images)
        for index, result in enumerate(batch):
            single = codec.compress(images[index])
            assert result.payload_bytes == single.payload_bytes

    def test_batch_rejects_grayscale_stack(self, rng):
        codec = ColorJpegCodec(QuantizationTable.standard_luminance(50))
        with pytest.raises(ValueError):
            codec.compress_batch(rng.normal(128, 30, (4, 16, 16)))


class TestColorCodec:
    def test_roundtrip_shape(self, random_rgb_image):
        codec = ColorJpegCodec(
            QuantizationTable.standard_luminance(75),
            QuantizationTable.standard_chrominance(75),
        )
        result = codec.compress(random_rgb_image)
        assert result.reconstructed.shape == random_rgb_image.shape
        assert result.original_bytes == random_rgb_image.size

    def test_subsampling_reduces_size(self, random_rgb_image):
        luma = QuantizationTable.standard_luminance(75)
        chroma = QuantizationTable.standard_chrominance(75)
        with_sub = ColorJpegCodec(luma, chroma, subsample_chroma=True).compress(
            random_rgb_image
        )
        without_sub = ColorJpegCodec(luma, chroma, subsample_chroma=False).compress(
            random_rgb_image
        )
        assert with_sub.payload_bytes < without_sub.payload_bytes

    def test_reasonable_quality_on_smooth_color_image(self):
        x, y = np.meshgrid(np.arange(32), np.arange(32))
        image = np.stack(
            [128 + 60 * np.sin(x / 10), 128 + 60 * np.cos(y / 12),
             np.full_like(x, 100.0, dtype=float)],
            axis=-1,
        )
        codec = ColorJpegCodec(
            QuantizationTable.standard_luminance(90),
            QuantizationTable.standard_chrominance(90),
        )
        result = codec.compress(image)
        assert psnr(image, result.reconstructed) > 28.0

    def test_chroma_table_defaults_to_luma(self, random_rgb_image):
        luma = QuantizationTable.standard_luminance(60)
        codec = ColorJpegCodec(luma)
        assert codec.chroma_table is luma
        codec.compress(random_rgb_image)

    def test_rejects_grayscale_input(self, random_image):
        codec = ColorJpegCodec(QuantizationTable.standard_luminance(50))
        with pytest.raises(ValueError):
            codec.compress(random_image)

    def test_header_larger_than_grayscale(self, random_image, random_rgb_image):
        gray = GrayscaleJpegCodec(QuantizationTable.standard_luminance(50))
        color = ColorJpegCodec(
            QuantizationTable.standard_luminance(50),
            QuantizationTable.standard_chrominance(50),
        )
        assert (
            color.compress(random_rgb_image).header_bytes
            > gray.compress(random_image).header_bytes
        )
