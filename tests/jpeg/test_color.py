"""Tests for colour conversion and chroma subsampling."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st
from hypothesis.extra import numpy as hnp

from repro.jpeg.color import (
    batch_subsample_420,
    batch_upsample_420,
    rgb_to_ycbcr,
    subsample_420,
    upsample_420,
    ycbcr_to_rgb,
)


class TestRgbYcbcr:
    def test_roundtrip(self, random_rgb_image):
        recovered = ycbcr_to_rgb(rgb_to_ycbcr(random_rgb_image))
        np.testing.assert_allclose(recovered, random_rgb_image, atol=1e-9)

    def test_gray_input_has_neutral_chroma(self):
        gray = np.full((8, 8, 3), 90.0)
        ycbcr = rgb_to_ycbcr(gray)
        np.testing.assert_allclose(ycbcr[..., 0], 90.0)
        np.testing.assert_allclose(ycbcr[..., 1], 128.0)
        np.testing.assert_allclose(ycbcr[..., 2], 128.0)

    def test_white_maps_to_peak_luma(self):
        white = np.full((2, 2, 3), 255.0)
        ycbcr = rgb_to_ycbcr(white)
        np.testing.assert_allclose(ycbcr[..., 0], 255.0)

    def test_pure_red_has_high_cr(self):
        red = np.zeros((2, 2, 3))
        red[..., 0] = 255.0
        ycbcr = rgb_to_ycbcr(red)
        assert np.all(ycbcr[..., 2] > 200.0)

    def test_output_clipped_to_valid_range(self):
        ycbcr = np.zeros((4, 4, 3))
        ycbcr[..., 0] = 300.0
        rgb = ycbcr_to_rgb(ycbcr)
        assert rgb.max() <= 255.0
        assert rgb.min() >= 0.0

    def test_rejects_grayscale_input(self):
        with pytest.raises(ValueError):
            rgb_to_ycbcr(np.zeros((8, 8)))
        with pytest.raises(ValueError):
            ycbcr_to_rgb(np.zeros((8, 8, 4)))

    @settings(max_examples=25, deadline=None)
    @given(
        hnp.arrays(
            np.float64, (4, 4, 3), elements=st.floats(0, 255, allow_nan=False)
        )
    )
    def test_roundtrip_property(self, image):
        np.testing.assert_allclose(
            ycbcr_to_rgb(rgb_to_ycbcr(image)), image, atol=1e-6
        )


class TestChromaSubsampling:
    def test_subsample_halves_dimensions(self):
        channel = np.arange(64, dtype=float).reshape(8, 8)
        assert subsample_420(channel).shape == (4, 4)

    def test_subsample_averages_2x2_blocks(self):
        channel = np.array([[1.0, 3.0], [5.0, 7.0]])
        np.testing.assert_allclose(subsample_420(channel), [[4.0]])

    def test_odd_dimensions_handled(self):
        channel = np.ones((5, 7))
        assert subsample_420(channel).shape == (3, 4)

    def test_upsample_restores_shape(self):
        channel = np.random.default_rng(0).normal(size=(6, 6))
        sub = subsample_420(channel)
        up = upsample_420(sub, channel.shape)
        assert up.shape == channel.shape

    def test_upsample_of_constant_is_exact(self):
        channel = np.full((10, 10), 42.0)
        np.testing.assert_allclose(
            upsample_420(subsample_420(channel), channel.shape), channel
        )

    def test_rejects_non_2d(self):
        with pytest.raises(ValueError):
            subsample_420(np.zeros((2, 2, 3)))
        with pytest.raises(ValueError):
            upsample_420(np.zeros((2, 2, 3)), (4, 4))


class TestBatchHelpers:
    def test_rgb_to_ycbcr_broadcasts_over_stacks(self):
        rng = np.random.default_rng(4)
        images = rng.uniform(0, 255, (5, 8, 8, 3))
        stacked = rgb_to_ycbcr(images)
        for index in range(images.shape[0]):
            np.testing.assert_array_equal(
                stacked[index], rgb_to_ycbcr(images[index])
            )

    def test_ycbcr_to_rgb_broadcasts_over_stacks(self):
        rng = np.random.default_rng(5)
        images = rng.uniform(0, 255, (4, 6, 6, 3))
        stacked = ycbcr_to_rgb(images)
        for index in range(images.shape[0]):
            np.testing.assert_array_equal(
                stacked[index], ycbcr_to_rgb(images[index])
            )

    @pytest.mark.parametrize("shape", [(3, 8, 8), (2, 5, 7)])
    def test_batch_subsample_matches_per_image(self, shape):
        rng = np.random.default_rng(6)
        channels = rng.uniform(0, 255, shape)
        batch = batch_subsample_420(channels)
        for index in range(shape[0]):
            np.testing.assert_array_equal(
                batch[index], subsample_420(channels[index])
            )

    def test_batch_upsample_matches_per_image(self):
        rng = np.random.default_rng(7)
        channels = rng.uniform(0, 255, (3, 4, 4))
        batch = batch_upsample_420(channels, (7, 8))
        for index in range(3):
            np.testing.assert_array_equal(
                batch[index], upsample_420(channels[index], (7, 8))
            )

    def test_batch_helpers_reject_2d_input(self):
        with pytest.raises(ValueError):
            batch_subsample_420(np.zeros((4, 4)))
        with pytest.raises(ValueError):
            batch_upsample_420(np.zeros((4, 4)), (8, 8))
