"""Byte containers: exact round-trips and malformed-input rejection."""

import numpy as np
import pytest

from repro.jpeg.codec import ColorJpegCodec, GrayscaleJpegCodec
from repro.jpeg.container import (
    CONTAINER_MAGIC,
    ContainerError,
    decode_image_bytes,
    pack_color_image,
    pack_grayscale_image,
    unpack_container,
)
from repro.jpeg.quantization import QuantizationTable


@pytest.fixture(scope="module")
def gray_image():
    rng = np.random.default_rng(21)
    return rng.uniform(0.0, 255.0, size=(24, 20)).round()


@pytest.fixture(scope="module")
def rgb_image():
    rng = np.random.default_rng(22)
    return rng.uniform(0.0, 255.0, size=(16, 24, 3)).round()


def _assert_channels_equal(left, right):
    assert left.data == right.data
    assert left.grid_shape == right.grid_shape
    assert left.channel_shape == right.channel_shape
    assert left.block_count == right.block_count
    assert left.dc_huffman == right.dc_huffman
    assert left.ac_huffman == right.ac_huffman


class TestGrayscaleRoundTrip:
    @pytest.mark.parametrize("optimize_huffman", [False, True])
    def test_byte_exact_round_trip(self, gray_image, optimize_huffman):
        codec = GrayscaleJpegCodec(
            QuantizationTable.standard_luminance(80),
            optimize_huffman=optimize_huffman,
        )
        encoded = codec.encode(gray_image)
        blob = pack_grayscale_image(encoded, codec.table)
        kind, unpacked, (table,) = unpack_container(blob)
        assert kind == "grayscale"
        _assert_channels_equal(unpacked, encoded)
        np.testing.assert_array_equal(table.values, codec.table.values)
        assert table.name == codec.table.name
        # Re-packing the unpacked container reproduces identical bytes.
        assert pack_grayscale_image(unpacked, table) == blob

    @pytest.mark.parametrize("optimize_huffman", [False, True])
    def test_decode_image_bytes_matches_codec(
        self, gray_image, optimize_huffman
    ):
        codec = GrayscaleJpegCodec(
            QuantizationTable.standard_luminance(70),
            optimize_huffman=optimize_huffman,
        )
        blob = codec.encode_to_bytes(gray_image)
        np.testing.assert_array_equal(
            decode_image_bytes(blob), codec.decode(codec.encode(gray_image))
        )


class TestColorRoundTrip:
    @pytest.mark.parametrize("optimize_huffman", [False, True])
    @pytest.mark.parametrize("subsample", [False, True])
    def test_byte_exact_round_trip(self, rgb_image, subsample, optimize_huffman):
        codec = ColorJpegCodec(
            QuantizationTable.standard_luminance(80),
            QuantizationTable.standard_chrominance(80),
            subsample_chroma=subsample,
            optimize_huffman=optimize_huffman,
        )
        encoded = codec.encode(rgb_image)
        blob = pack_color_image(encoded, codec.luma_table, codec.chroma_table)
        kind, unpacked, (luma, chroma) = unpack_container(blob)
        assert kind == "color"
        assert unpacked.image_shape == encoded.image_shape
        assert unpacked.subsample_chroma == encoded.subsample_chroma
        for left, right in zip(unpacked.planes, encoded.planes):
            _assert_channels_equal(left, right)
        np.testing.assert_array_equal(luma.values, codec.luma_table.values)
        np.testing.assert_array_equal(chroma.values, codec.chroma_table.values)
        assert pack_color_image(unpacked, luma, chroma) == blob

    @pytest.mark.parametrize("optimize_huffman", [False, True])
    def test_decode_image_bytes_matches_codec(
        self, rgb_image, optimize_huffman
    ):
        codec = ColorJpegCodec(
            QuantizationTable.standard_luminance(65),
            optimize_huffman=optimize_huffman,
        )
        blob = codec.encode_to_bytes(rgb_image)
        np.testing.assert_array_equal(
            decode_image_bytes(blob), codec.decode(codec.encode(rgb_image))
        )

    def test_encode_decode_matches_compress_reconstruction(self, rgb_image):
        codec = ColorJpegCodec(QuantizationTable.standard_luminance(75))
        np.testing.assert_array_equal(
            codec.decode(codec.encode(rgb_image)),
            codec.compress(rgb_image).reconstructed,
        )


class TestMalformedContainers:
    def _blob(self, gray_image):
        codec = GrayscaleJpegCodec(QuantizationTable.standard_luminance(80))
        return codec.encode_to_bytes(gray_image)

    def test_bad_magic(self, gray_image):
        blob = b"XXXX" + self._blob(gray_image)[4:]
        with pytest.raises(ContainerError, match="magic"):
            unpack_container(blob)

    def test_bad_version(self, gray_image):
        blob = bytearray(self._blob(gray_image))
        blob[len(CONTAINER_MAGIC)] = 99
        with pytest.raises(ContainerError, match="version"):
            unpack_container(bytes(blob))

    def test_unknown_kind(self, gray_image):
        blob = bytearray(self._blob(gray_image))
        blob[len(CONTAINER_MAGIC) + 1] = 7
        with pytest.raises(ContainerError, match="kind"):
            unpack_container(bytes(blob))

    def test_truncated(self, gray_image):
        blob = self._blob(gray_image)
        with pytest.raises(ContainerError, match="truncated"):
            unpack_container(blob[: len(blob) // 2])

    def test_trailing_bytes(self, gray_image):
        with pytest.raises(ContainerError, match="trailing"):
            unpack_container(self._blob(gray_image) + b"\x00")
