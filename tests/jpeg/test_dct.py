"""Tests for the 8x8 block DCT."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st
from hypothesis.extra import numpy as hnp
from scipy import fft as scipy_fft

from repro.jpeg.dct import (
    BLOCK_SIZE,
    block_dct2d,
    block_idct2d,
    dct2d,
    dct_matrix,
    idct2d,
)


class TestDctMatrix:
    def test_is_orthonormal(self):
        matrix = dct_matrix(8)
        np.testing.assert_allclose(matrix @ matrix.T, np.eye(8), atol=1e-12)

    def test_first_row_is_constant(self):
        matrix = dct_matrix(8)
        np.testing.assert_allclose(matrix[0], np.full(8, np.sqrt(1 / 8)))

    def test_other_sizes(self):
        matrix = dct_matrix(4)
        np.testing.assert_allclose(matrix @ matrix.T, np.eye(4), atol=1e-12)


class TestDct2d:
    def test_matches_scipy(self, rng):
        block = rng.normal(0, 50, (8, 8))
        expected = scipy_fft.dctn(block, type=2, norm="ortho")
        np.testing.assert_allclose(dct2d(block), expected, atol=1e-9)

    def test_roundtrip(self, rng):
        block = rng.normal(0, 50, (8, 8))
        np.testing.assert_allclose(idct2d(dct2d(block)), block, atol=1e-9)

    def test_constant_block_has_only_dc(self):
        block = np.full((8, 8), 17.0)
        coefficients = dct2d(block)
        assert coefficients[0, 0] == pytest.approx(17.0 * 8)
        assert np.abs(coefficients).sum() == pytest.approx(abs(coefficients[0, 0]))

    def test_energy_preservation(self, rng):
        block = rng.normal(0, 30, (8, 8))
        coefficients = dct2d(block)
        assert np.sum(block ** 2) == pytest.approx(np.sum(coefficients ** 2))

    def test_rejects_wrong_shape(self):
        with pytest.raises(ValueError):
            dct2d(np.zeros((4, 4)))

    def test_alternating_pattern_concentrates_in_high_bands(self):
        rows = np.arange(8)[:, None]
        cols = np.arange(8)[None, :]
        block = np.where((rows + cols) % 2 == 0, 10.0, -10.0)
        coefficients = dct2d(block)
        # The per-pixel alternating pattern is the highest-frequency content
        # an 8x8 block can carry: its single largest DCT coefficient is the
        # (7, 7) corner and the bulk of its energy lies in the upper half of
        # the band grid (rows and columns >= 4).
        assert np.unravel_index(np.argmax(np.abs(coefficients)), (8, 8)) == (7, 7)
        total_energy = np.sum(coefficients ** 2)
        high_energy = np.sum(coefficients[4:, 4:] ** 2)
        assert high_energy > 0.8 * total_energy


class TestBlockDct:
    def test_matches_single_block_version(self, rng):
        blocks = rng.normal(0, 40, (5, 8, 8))
        stacked = block_dct2d(blocks)
        for i in range(5):
            np.testing.assert_allclose(stacked[i], dct2d(blocks[i]), atol=1e-9)

    def test_roundtrip_stack(self, rng):
        blocks = rng.normal(0, 40, (7, 8, 8))
        np.testing.assert_allclose(
            block_idct2d(block_dct2d(blocks)), blocks, atol=1e-9
        )

    def test_rejects_wrong_shape(self):
        with pytest.raises(ValueError):
            block_dct2d(np.zeros((3, 4, 4)))
        with pytest.raises(ValueError):
            block_idct2d(np.zeros((8, 8)))

    @settings(max_examples=25, deadline=None)
    @given(
        hnp.arrays(
            np.float64,
            (3, BLOCK_SIZE, BLOCK_SIZE),
            elements=st.floats(-1000, 1000, allow_nan=False),
        )
    )
    def test_roundtrip_property(self, blocks):
        np.testing.assert_allclose(
            block_idct2d(block_dct2d(blocks)), blocks, atol=1e-6
        )
