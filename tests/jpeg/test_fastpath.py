"""Scalar ↔ vectorized parity tests for the entropy-coding fast path.

The NumPy fast path (tokenize → dense Huffman arrays → vectorized bit
packing) must produce byte streams bit-identical to the scalar reference
(`encode_dc`/`encode_ac` through a `BitWriter`), and the table-driven
decoder must invert them exactly.  These tests assert that over random
quantized block stacks and the edge cases that historically break
entropy coders: all-zero blocks, zero runs longer than 15 (ZRL chains),
0xFF byte-stuffing boundaries and final-byte padding.
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st
from hypothesis.extra import numpy as hnp

from repro.jpeg.bitstream import (
    BitReader,
    BitWriter,
    destuff_bytes,
    encode_magnitude,
    encode_magnitude_array,
    magnitude_category,
    magnitude_category_array,
    pack_bits,
    peek_words,
)
from repro.jpeg.codec import _ChannelCoder
from repro.jpeg.huffman import HuffmanTable
from repro.jpeg.quantization import QuantizationTable
from repro.jpeg.rle import (
    DC_SYMBOL_OFFSET,
    block_symbol_histograms,
    encode_ac,
    encode_dc,
    tokenize_blocks,
)


# Module-level coder: shared by the parity tests (hypothesis forbids
# function-scoped fixtures inside @given).
CODER = _ChannelCoder(
    QuantizationTable.standard_luminance(50),
    HuffmanTable.standard_dc_luminance(),
    HuffmanTable.standard_ac_luminance(),
)


def scalar_token_stream(zz_blocks, reset_interval=0):
    """Reference token stream via the scalar encoders."""
    tokens = []
    previous_dc = 0
    for index, block in enumerate(np.asarray(zz_blocks)):
        if reset_interval and index % reset_interval == 0:
            previous_dc = 0
        dc = encode_dc(int(block[0]), previous_dc)
        previous_dc = int(block[0])
        tokens.append(
            (dc.symbol + DC_SYMBOL_OFFSET, dc.amplitude_bits,
             dc.amplitude_length)
        )
        for token in encode_ac(block[1:]):
            tokens.append(
                (token.symbol, token.amplitude_bits, token.amplitude_length)
            )
    return tokens


def random_blocks(rng, count, low=-200, high=200, density=0.3):
    blocks = rng.integers(low, high + 1, size=(count, 64))
    mask = rng.random((count, 64)) < density
    return (blocks * mask).astype(np.int64)


class TestMagnitudeCategory:
    @pytest.mark.parametrize(
        "value, expected",
        [(0, 0), (1, 1), (-1, 1), (2, 2), (3, 2), (4, 3), (255, 8),
         (256, 9), (32767, 15), (-32768, 16), (2 ** 20, 21)],
    )
    def test_scalar_is_exact_bit_length(self, value, expected):
        assert magnitude_category(value) == expected

    @settings(max_examples=100, deadline=None)
    @given(st.integers(min_value=-(2 ** 40), max_value=2 ** 40))
    def test_scalar_matches_mathematical_definition(self, value):
        expected = 0
        while (1 << expected) - 1 < abs(value):
            expected += 1
        assert magnitude_category(value) == expected

    def test_array_matches_scalar_below_lut_range(self):
        values = np.arange(-70000, 70000, 17)
        expected = [magnitude_category(int(v)) for v in values]
        np.testing.assert_array_equal(
            magnitude_category_array(values), expected
        )

    def test_array_smear_path_for_huge_values(self):
        values = np.array([2 ** 17, -(2 ** 31), 2 ** 52, 0, 5])
        expected = [magnitude_category(int(v)) for v in values]
        np.testing.assert_array_equal(
            magnitude_category_array(values), expected
        )

    @settings(max_examples=50, deadline=None)
    @given(
        hnp.arrays(
            np.int64, (37,),
            elements=st.integers(min_value=-(2 ** 30), max_value=2 ** 30),
        )
    )
    def test_encode_magnitude_array_matches_scalar(self, values):
        bits, lengths = encode_magnitude_array(values)
        for index, value in enumerate(values):
            expected_bits, expected_length = encode_magnitude(int(value))
            assert bits[index] == expected_bits
            assert lengths[index] == expected_length


class TestPackBits:
    def test_empty_stream(self):
        assert pack_bits(np.array([], dtype=np.int64),
                         np.array([], dtype=np.int64)) == b""

    def test_zero_length_entries_are_skipped(self):
        values = np.array([0xAB, 7, 0x3], dtype=np.int64)
        lengths = np.array([8, 0, 2], dtype=np.int64)
        writer = BitWriter()
        writer.write_bits(0xAB, 8)
        writer.write_bits(0x3, 2)
        assert pack_bits(values, lengths) == writer.getvalue()

    def test_final_byte_padded_with_ones(self):
        assert pack_bits(np.array([0b101]), np.array([3])) == bytes(
            [0b10111111]
        )

    def test_ff_byte_is_stuffed(self):
        assert pack_bits(np.array([0xFF]), np.array([8])) == bytes(
            [0xFF, 0x00]
        )

    def test_stuffing_across_value_boundary(self):
        # Two nibbles of 0xF meet across one byte: must still stuff.
        values = np.array([0xF, 0xF, 0x1], dtype=np.int64)
        lengths = np.array([4, 4, 8], dtype=np.int64)
        assert pack_bits(values, lengths) == bytes([0xFF, 0x00, 0x01])

    def test_no_stuffing_when_disabled(self):
        assert pack_bits(
            np.array([0xFF]), np.array([8]), byte_stuffing=False
        ) == bytes([0xFF])

    @settings(max_examples=100, deadline=None)
    @given(
        st.lists(
            st.tuples(st.integers(0, 2 ** 16 - 1), st.integers(1, 16)),
            min_size=1, max_size=60,
        )
    )
    def test_matches_bitwriter_bit_for_bit(self, chunks):
        values = np.array([v & ((1 << l) - 1) for v, l in chunks])
        lengths = np.array([l for _, l in chunks])
        writer = BitWriter()
        for value, length in zip(values, lengths):
            writer.write_bits(int(value), int(length))
        assert pack_bits(values, lengths) == writer.getvalue()

    @settings(max_examples=50, deadline=None)
    @given(
        st.lists(
            st.tuples(st.integers(0, 2 ** 12 - 1), st.integers(12, 16)),
            min_size=1, max_size=30,
        )
    )
    def test_bitreader_reads_back_packed_stream(self, chunks):
        values = np.array([v for v, _ in chunks])
        lengths = np.array([l for _, l in chunks])
        reader = BitReader(pack_bits(values, lengths))
        for value, length in chunks:
            assert reader.read_bits(length) == value


class TestPeekWords:
    def test_destuff_inverts_stuffing(self):
        writer = BitWriter()
        for byte in (0xFF, 0x00, 0xFF, 0x12):
            writer.write_bits(byte, 8)
        assert destuff_bytes(writer.getvalue()) == bytes(
            [0xFF, 0x00, 0xFF, 0x12]
        )

    def test_windows_expose_bits_at_any_offset(self):
        data = pack_bits(np.array([0b1011001110001111]), np.array([16]))
        words, total_bits = peek_words(data)
        assert total_bits == 16
        stream = 0b1011001110001111
        for position in range(9):
            window = (
                words[position >> 3] >> (32 - (position & 7))
            ) & 0xFFFFFFFF
            expected_high16 = (
                (stream << 16 | 0xFFFF) >> (16 - position)
            ) & 0xFFFF
            assert (window >> 16) == expected_high16


class TestTokenizeBlocks:
    def test_rejects_wrong_shape(self):
        with pytest.raises(ValueError):
            tokenize_blocks(np.zeros((3, 63)))

    def test_empty_stack(self):
        stream = tokenize_blocks(np.zeros((0, 64)))
        assert len(stream) == 0

    @settings(max_examples=60, deadline=None)
    @given(st.integers(0, 2 ** 32))
    def test_matches_scalar_tokens_on_random_stacks(self, seed):
        rng = np.random.default_rng(seed)
        blocks = random_blocks(rng, int(rng.integers(1, 12)),
                               density=float(rng.uniform(0.02, 0.6)))
        stream = tokenize_blocks(blocks)
        expected = scalar_token_stream(blocks)
        assert len(stream) == len(expected)
        for index, (symbol, bits, length) in enumerate(expected):
            assert stream.symbols[index] == symbol
            assert stream.amplitudes[index] == bits
            assert stream.amplitude_lengths[index] == length
        assert int(stream.block_token_counts.sum()) == len(expected)

    def test_all_zero_blocks_are_dc_plus_eob(self):
        stream = tokenize_blocks(np.zeros((3, 64), dtype=np.int64))
        assert len(stream) == 6
        np.testing.assert_array_equal(stream.block_token_counts, [2, 2, 2])

    def test_zrl_chains_for_long_runs(self):
        block = np.zeros((1, 64), dtype=np.int64)
        block[0, 40] = 5  # 39 leading AC zeros: two ZRLs then run 7
        stream = tokenize_blocks(block)
        expected = scalar_token_stream(block)
        assert [int(s) for s in stream.symbols] == [s for s, _, _ in expected]

    def test_run_of_exactly_16_uses_single_zrl(self):
        block = np.zeros((1, 64), dtype=np.int64)
        block[0, 17] = 1
        stream = tokenize_blocks(block)
        expected = scalar_token_stream(block)
        assert [int(s) for s in stream.symbols] == [s for s, _, _ in expected]

    def test_reset_interval_restarts_dc_prediction(self):
        blocks = np.zeros((4, 64), dtype=np.int64)
        blocks[:, 0] = [10, 20, 30, 40]
        stream = tokenize_blocks(blocks, reset_interval=2)
        expected = scalar_token_stream(blocks, reset_interval=2)
        for index, (symbol, bits, length) in enumerate(expected):
            assert stream.symbols[index] == symbol
            assert stream.amplitudes[index] == bits

    def test_dc_prediction_with_reset_differs_from_without(self):
        blocks = np.zeros((4, 64), dtype=np.int64)
        blocks[:, 0] = [10, 20, 30, 40]
        with_reset = tokenize_blocks(blocks, reset_interval=2)
        without = tokenize_blocks(blocks)
        assert not np.array_equal(with_reset.amplitudes, without.amplitudes)


class TestHistogramParity:
    @settings(max_examples=30, deadline=None)
    @given(st.integers(0, 2 ** 32))
    def test_matches_scalar_counts(self, seed):
        rng = np.random.default_rng(seed)
        blocks = random_blocks(rng, int(rng.integers(1, 10)))
        dc_counts, ac_counts = block_symbol_histograms(blocks)
        expected_dc: dict = {}
        expected_ac: dict = {}
        for symbol, _, _ in scalar_token_stream(blocks):
            if symbol >= DC_SYMBOL_OFFSET:
                key = symbol - DC_SYMBOL_OFFSET
                expected_dc[key] = expected_dc.get(key, 0) + 1
            else:
                expected_ac[symbol] = expected_ac.get(symbol, 0) + 1
        assert dc_counts == expected_dc
        assert ac_counts == expected_ac


class TestEncodeParity:
    @settings(max_examples=40, deadline=None)
    @given(st.integers(0, 2 ** 32))
    def test_byte_identical_on_random_images(self, seed):
        rng = np.random.default_rng(seed)
        height, width = rng.integers(8, 57, size=2)
        image = np.clip(rng.normal(128.0, 64.0, (height, width)), 0, 255)
        fast = CODER.encode(image)
        reference = CODER.encode_scalar(image)
        assert fast.data == reference.data
        assert fast.block_count == reference.block_count
        assert fast.grid_shape == reference.grid_shape

    def test_byte_identical_on_constant_image(self):
        image = np.full((32, 24), 201.0)
        assert CODER.encode(image).data == CODER.encode_scalar(image).data

    def test_byte_identical_on_sparse_images_with_zrl_chains(self):
        rng = np.random.default_rng(7)
        for _ in range(20):
            image = np.full((24, 24), 128.0)
            ys, xs = rng.integers(0, 24, size=(2, 3))
            image[ys, xs] = rng.integers(0, 256, size=3)
            assert CODER.encode(image).data == CODER.encode_scalar(image).data

    @settings(max_examples=40, deadline=None)
    @given(st.integers(0, 2 ** 32))
    def test_entropy_code_fused_matches_general(self, seed):
        rng = np.random.default_rng(seed)
        blocks = random_blocks(rng, int(rng.integers(1, 16)),
                               low=-255, high=255,
                               density=float(rng.uniform(0.02, 0.5)))
        values, lengths, counts = CODER.entropy_code(blocks)
        ref_values, ref_lengths, ref_counts = CODER._entropy_code_general(
            blocks
        )
        assert pack_bits(values, lengths) == pack_bits(
            ref_values, ref_lengths
        )
        assert int(counts.sum()) <= int(ref_counts.sum())

    def test_missing_symbol_raises_keyerror(self):
        # A single-symbol optimized table cannot code a different block.
        dc_table = HuffmanTable.from_frequencies({0: 1}, "dc-tiny")
        ac_table = HuffmanTable.from_frequencies({0x01: 1}, "ac-tiny")
        tiny = _ChannelCoder(
            QuantizationTable.standard_luminance(50), dc_table, ac_table
        )
        blocks = np.zeros((1, 64), dtype=np.int64)
        blocks[0, 0] = 50  # DC category 6: absent from the tiny table
        with pytest.raises(KeyError):
            tiny.encode_quantized(blocks)


class TestDecodeParity:
    @settings(max_examples=40, deadline=None)
    @given(st.integers(0, 2 ** 32))
    def test_fast_decode_matches_scalar_decode(self, seed):
        rng = np.random.default_rng(seed)
        height, width = rng.integers(8, 49, size=2)
        image = np.clip(rng.normal(128.0, 64.0, (height, width)), 0, 255)
        encoded = CODER.encode(image)
        np.testing.assert_array_equal(
            CODER.decode(encoded), CODER.decode_scalar(encoded)
        )

    @settings(max_examples=40, deadline=None)
    @given(st.integers(0, 2 ** 32))
    def test_roundtrip_recovers_quantized_blocks(self, seed):
        rng = np.random.default_rng(seed)
        blocks = random_blocks(rng, int(rng.integers(1, 16)),
                               low=-255, high=255,
                               density=float(rng.uniform(0.02, 0.5)))
        data = CODER.encode_quantized(blocks)
        decoded = CODER.decode_to_zigzag(data, blocks.shape[0])
        np.testing.assert_array_equal(decoded, blocks)

    def test_roundtrip_with_stuffed_bytes(self):
        # Search a few seeds for a payload containing a stuffed 0xFF so
        # the destuffing path is provably exercised.
        rng = np.random.default_rng(11)
        exercised = False
        for _ in range(200):
            blocks = random_blocks(rng, 4, low=-255, high=255, density=0.4)
            data = CODER.encode_quantized(blocks)
            if b"\xff\x00" in data:
                exercised = True
                decoded = CODER.decode_to_zigzag(data, 4)
                np.testing.assert_array_equal(decoded, blocks)
        assert exercised

    def test_decode_detects_truncated_stream(self):
        rng = np.random.default_rng(5)
        blocks = random_blocks(rng, 8, density=0.5)
        data = CODER.encode_quantized(blocks)
        with pytest.raises((EOFError, ValueError)):
            CODER.decode_to_zigzag(data[: max(1, len(data) // 4)], 8)

    def test_every_truncation_point_raises_cleanly(self):
        # Never a raw IndexError, whatever prefix of the stream survives.
        # Cutting only a trailing stuffed 0x00 (or nothing but padding)
        # loses no payload bits, so an exact decode is also acceptable.
        rng = np.random.default_rng(17)
        blocks = random_blocks(rng, 6, density=0.4)
        data = CODER.encode_quantized(blocks)
        for cut in range(len(data)):
            try:
                decoded = CODER.decode_to_zigzag(data[:cut], 6)
            except (EOFError, ValueError):
                continue
            np.testing.assert_array_equal(decoded, blocks)


class TestOutOfRangeMagnitudes:
    def test_uncodable_ac_magnitude_raises_not_corrupts(self):
        # Category > 15 cannot fit the (run, size) nibble; encoding must
        # fail loudly instead of aliasing into a different symbol.
        blocks = np.zeros((1, 64), dtype=np.int64)
        blocks[0, 5] = 1 << 17
        with pytest.raises(ValueError):
            CODER.encode_quantized(blocks)
        with pytest.raises(ValueError):
            tokenize_blocks(blocks)

    def test_uncodable_dc_magnitude_raises_valueerror(self):
        blocks = np.zeros((1, 64), dtype=np.int64)
        blocks[0, 0] = 1 << 17  # DC category 18: beyond any baseline table
        with pytest.raises(ValueError):
            CODER.encode_quantized(blocks)

    def test_huge_dc_jump_raises_even_with_optimized_tables(self):
        # A DC category > 16 encodes fine under an optimized table but is
        # not invertible by the table-driven decoder; reject at encode.
        blocks = np.zeros((2, 64), dtype=np.int64)
        blocks[1, 0] = 1 << 29
        with pytest.raises((ValueError, KeyError)):
            CODER.encode_quantized(blocks)
        with pytest.raises(ValueError):
            tokenize_blocks(blocks)
