"""Fuzz and parity tests for the stream-parallel FSM entropy decoder.

The vectorized decoder (:mod:`repro.jpeg.fsm_decode`) must be
bit-identical to the sequential table-driven walk on every valid
stream, and on malformed streams it must flag the stream so the codec
falls back to the walk — which raises exactly the error the walk
always raised.  These tests fuzz both properties: random quantization
tables × random images × ``optimize_huffman`` on/off for the valid
side, and exhaustive truncation plus random byte corruption for the
malformed side.
"""

import numpy as np
import pytest

from repro.jpeg.codec import GrayscaleJpegCodec, _optimized_channel_coder
from repro.jpeg.fsm_decode import decode_streams
from repro.jpeg.quantization import QuantizationTable


def _encode_batch(coder, images):
    """Encode a stack of grayscale images; returns (datas, block_counts)."""
    datas, counts = [], []
    for image in images:
        zz_blocks, _ = coder.quantized_blocks(image)
        datas.append(coder.encode_quantized(zz_blocks))
        counts.append(zz_blocks.shape[0])
    return datas, counts


def _walk_outcome(coder, data, block_count):
    """Run the scalar walk; returns (result, None) or (None, exception)."""
    try:
        return coder.decode_to_zigzag_walk(data, block_count), None
    except (ValueError, EOFError) as exc:
        return None, exc


def _assert_fsm_matches_walk(coder, datas, counts, **kwargs):
    """Assert the FSM decode of every stream equals the walk outcome.

    Valid streams must be bit-identical; streams where the walk raises
    must be flagged (the codec's fallback then re-raises the walk's
    exact error), and flagged valid streams are tolerated only through
    the fallback — which this helper also checks end to end through
    ``decode_to_zigzag_batch`` semantics.
    """
    results, flagged = decode_streams(
        datas, counts, coder.dc_huffman, coder.ac_huffman, **kwargs
    )
    flagged = set(flagged)
    for index, (data, count) in enumerate(zip(datas, counts)):
        expected, error = _walk_outcome(coder, data, count)
        if error is not None:
            assert index in flagged, (
                f"stream {index}: walk raised {error!r} but FSM did not flag"
            )
        elif index in flagged:
            # Over-flagging a valid stream is a correctness no-op (the
            # fallback walk returns the right answer); it must still
            # round-trip correctly.
            np.testing.assert_array_equal(
                coder.decode_to_zigzag_walk(data, count), expected
            )
        else:
            np.testing.assert_array_equal(results[index], expected)


def _random_images(rng, count, shape=(24, 24)):
    smooth = np.clip(
        rng.normal(128, 40, (count,) + shape)
        + np.linspace(0, 60, shape[1])[None, None, :],
        0,
        255,
    )
    return list(smooth)


class TestFsmParityFuzz:
    def test_standard_tables_random_images(self, rng):
        codec = GrayscaleJpegCodec(QuantizationTable.standard_luminance(60))
        coder = codec._standard_coder()
        datas, counts = _encode_batch(coder, _random_images(rng, 24))
        _assert_fsm_matches_walk(coder, datas, counts)

    @pytest.mark.parametrize("seed", [0, 1, 2])
    def test_random_quant_tables(self, seed):
        rng = np.random.default_rng(seed)
        table = QuantizationTable(
            rng.integers(1, 80, (8, 8)).astype(float), name=f"fuzz-{seed}"
        )
        coder = GrayscaleJpegCodec(table)._standard_coder()
        datas, counts = _encode_batch(coder, _random_images(rng, 12))
        _assert_fsm_matches_walk(coder, datas, counts)

    def test_optimized_huffman_tables(self, rng):
        """Per-image tables exercise non-standard code assignments."""
        table = QuantizationTable.standard_luminance(40)
        images = _random_images(rng, 16)
        codec = GrayscaleJpegCodec(table)
        zz_all = []
        for image in images:
            zz, _ = codec._standard_coder().quantized_blocks(image)
            zz_all.append(zz)
        coder = _optimized_channel_coder(table, np.concatenate(zz_all))
        datas = [coder.encode_quantized(zz) for zz in zz_all]
        counts = [zz.shape[0] for zz in zz_all]
        _assert_fsm_matches_walk(coder, datas, counts)

    def test_pure_noise_images(self, rng):
        """Noise maximizes AC token density (worst case for the FSM)."""
        coder = GrayscaleJpegCodec(
            QuantizationTable.flat(1)
        )._standard_coder()
        images = [
            rng.integers(0, 256, (16, 16)).astype(float) for _ in range(8)
        ]
        datas, counts = _encode_batch(coder, images)
        _assert_fsm_matches_walk(coder, datas, counts)

    def test_tiny_chunk_budget_splits_batch(self, rng):
        """A minimal chunk budget forces one stream per chunk."""
        coder = GrayscaleJpegCodec(
            QuantizationTable.standard_luminance(70)
        )._standard_coder()
        datas, counts = _encode_batch(coder, _random_images(rng, 6))
        _assert_fsm_matches_walk(coder, datas, counts, chunk_positions=1)

    def test_zero_block_and_empty_streams(self):
        coder = GrayscaleJpegCodec(
            QuantizationTable.standard_luminance(50)
        )._standard_coder()
        results, flagged = decode_streams(
            [b""], [0], coder.dc_huffman, coder.ac_huffman
        )
        assert flagged == []
        assert results[0].shape == (0, 64)

    def test_empty_batch(self):
        coder = GrayscaleJpegCodec(
            QuantizationTable.standard_luminance(50)
        )._standard_coder()
        results, flagged = decode_streams(
            [], [], coder.dc_huffman, coder.ac_huffman
        )
        assert results == [] and flagged == []


class TestFsmMalformedStreams:
    def test_truncation_every_cut_point(self, rng):
        """Every prefix of a valid stream decodes or fails like the walk."""
        coder = GrayscaleJpegCodec(
            QuantizationTable.standard_luminance(55)
        )._standard_coder()
        datas, counts = _encode_batch(coder, _random_images(rng, 2))
        for data, count in zip(datas, counts):
            cuts = list(range(len(data)))
            truncated = [data[:cut] for cut in cuts]
            _assert_fsm_matches_walk(coder, truncated, [count] * len(cuts))

    @pytest.mark.parametrize("seed", [10, 11])
    def test_corrupt_bytes(self, seed):
        """Random single-byte corruption: same accept/reject as the walk."""
        rng = np.random.default_rng(seed)
        coder = GrayscaleJpegCodec(
            QuantizationTable.standard_luminance(45)
        )._standard_coder()
        datas, counts = _encode_batch(coder, _random_images(rng, 4))
        corrupted, ccounts = [], []
        for data, count in zip(datas, counts):
            for _ in range(40):
                position = int(rng.integers(0, len(data)))
                value = int(rng.integers(0, 256))
                corrupted.append(
                    data[:position] + bytes([value]) + data[position + 1:]
                )
                ccounts.append(count)
        _assert_fsm_matches_walk(coder, corrupted, ccounts)

    def test_batch_api_raises_walk_error_on_malformed(self, rng):
        """The public batch API re-raises the walk's exact exception."""
        coder = GrayscaleJpegCodec(
            QuantizationTable.standard_luminance(50)
        )._standard_coder()
        datas, counts = _encode_batch(coder, _random_images(rng, 20))
        bad = datas[3][: max(1, len(datas[3]) // 3)]
        expected, error = _walk_outcome(coder, bad, counts[3])
        if error is None:
            pytest.skip("truncation happened to stay decodable")
        datas[3] = bad
        with pytest.raises(type(error), match=str(error)[:20] or None):
            coder.decode_to_zigzag_batch(datas, counts)

    def test_mixed_good_and_bad_batch(self, rng):
        """Good streams around a bad one still decode bit-identically."""
        coder = GrayscaleJpegCodec(
            QuantizationTable.standard_luminance(65)
        )._standard_coder()
        datas, counts = _encode_batch(coder, _random_images(rng, 10))
        datas[5] = datas[5][:4]
        _assert_fsm_matches_walk(coder, datas, counts)
