"""Tests for Huffman table construction and coding."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.jpeg.bitstream import BitReader, BitWriter
from repro.jpeg.huffman import MAX_CODE_LENGTH, HuffmanTable


class TestStandardTables:
    @pytest.mark.parametrize(
        "factory, symbol_count",
        [
            (HuffmanTable.standard_dc_luminance, 12),
            (HuffmanTable.standard_dc_chrominance, 12),
            (HuffmanTable.standard_ac_luminance, 162),
            (HuffmanTable.standard_ac_chrominance, 162),
        ],
    )
    def test_symbol_counts(self, factory, symbol_count):
        table = factory()
        assert len(table.symbols()) == symbol_count

    def test_codes_are_prefix_free(self):
        table = HuffmanTable.standard_ac_luminance()
        codes = [
            format(code, f"0{length}b")
            for code, length in (table.encode(s) for s in table.symbols())
        ]
        for i, first in enumerate(codes):
            for j, second in enumerate(codes):
                if i != j:
                    assert not second.startswith(first)

    def test_known_code_for_eob(self):
        # In Annex K Table K.5 the EOB symbol (0x00) has the 4-bit code 1010.
        table = HuffmanTable.standard_ac_luminance()
        assert table.encode(0x00) == (0b1010, 4)

    def test_unknown_symbol_raises(self):
        table = HuffmanTable.standard_dc_luminance()
        with pytest.raises(KeyError):
            table.encode(0x55)

    def test_contains(self):
        table = HuffmanTable.standard_dc_luminance()
        assert 0 in table
        assert 200 not in table

    def test_header_cost(self):
        table = HuffmanTable.standard_dc_luminance()
        assert table.header_cost_bytes() == 1 + 16 + 12


class TestTableValidation:
    def test_bits_length_enforced(self):
        with pytest.raises(ValueError):
            HuffmanTable([1] * 15, [0])

    def test_symbol_count_must_match_bits(self):
        with pytest.raises(ValueError):
            HuffmanTable([1] + [0] * 15, [0, 1])

    def test_duplicate_symbols_rejected(self):
        with pytest.raises(ValueError):
            HuffmanTable([2] + [0] * 15, [7, 7])


class TestOptimizedTables:
    def test_more_frequent_symbols_get_shorter_codes(self):
        frequencies = {0: 1000, 1: 500, 2: 100, 3: 10, 4: 1}
        table = HuffmanTable.from_frequencies(frequencies)
        assert table.code_length(0) <= table.code_length(4)

    def test_single_symbol(self):
        table = HuffmanTable.from_frequencies({7: 42})
        code, length = table.encode(7)
        assert length == 1

    def test_zero_count_symbols_dropped(self):
        table = HuffmanTable.from_frequencies({1: 10, 2: 0})
        assert 1 in table
        assert 2 not in table

    def test_empty_frequencies_rejected(self):
        with pytest.raises(ValueError):
            HuffmanTable.from_frequencies({})

    def test_roundtrip_through_bitstream(self):
        frequencies = {symbol: (symbol % 7) + 1 for symbol in range(40)}
        table = HuffmanTable.from_frequencies(frequencies)
        symbols = [3, 17, 39, 0, 21, 3, 3, 8]
        writer = BitWriter()
        for symbol in symbols:
            writer.write_code(table.encode(symbol))
        reader = BitReader(writer.getvalue())
        decoded = [table.decode_symbol(reader) for _ in symbols]
        assert decoded == symbols

    def test_length_limited_to_16_bits(self):
        # Exponentially skewed frequencies force long optimal codes.
        frequencies = {symbol: 2 ** symbol for symbol in range(30)}
        table = HuffmanTable.from_frequencies(frequencies)
        lengths = [table.code_length(symbol) for symbol in range(30)]
        assert max(lengths) <= MAX_CODE_LENGTH

    def test_optimized_beats_or_matches_uniform_cost(self):
        frequencies = {0: 900, 1: 50, 2: 25, 3: 25}
        table = HuffmanTable.from_frequencies(frequencies)
        total_bits = sum(
            count * table.code_length(symbol)
            for symbol, count in frequencies.items()
        )
        uniform_bits = sum(frequencies.values()) * 2
        assert total_bits <= uniform_bits

    @settings(max_examples=30, deadline=None)
    @given(
        st.dictionaries(
            st.integers(min_value=0, max_value=255),
            st.integers(min_value=1, max_value=10000),
            min_size=1,
            max_size=64,
        )
    )
    def test_from_frequencies_property(self, frequencies):
        table = HuffmanTable.from_frequencies(frequencies)
        # Every symbol is encodable, codes fit in 16 bits and decode back.
        writer = BitWriter()
        symbols = sorted(frequencies)
        for symbol in symbols:
            code, length = table.encode(symbol)
            assert 1 <= length <= MAX_CODE_LENGTH
            writer.write_bits(code, length)
        reader = BitReader(writer.getvalue())
        assert [table.decode_symbol(reader) for _ in symbols] == symbols
