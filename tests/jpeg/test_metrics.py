"""Tests for image metrics."""

import numpy as np
import pytest

from repro.jpeg.metrics import compression_ratio, mse, psnr


class TestMse:
    def test_identical_images(self):
        image = np.ones((4, 4))
        assert mse(image, image) == 0.0

    def test_known_value(self):
        a = np.zeros((2, 2))
        b = np.full((2, 2), 3.0)
        assert mse(a, b) == pytest.approx(9.0)

    def test_shape_mismatch(self):
        with pytest.raises(ValueError):
            mse(np.zeros((2, 2)), np.zeros((3, 3)))


class TestPsnr:
    def test_identical_is_infinite(self):
        image = np.ones((4, 4))
        assert psnr(image, image) == float("inf")

    def test_known_value(self):
        a = np.zeros((4, 4))
        b = np.full((4, 4), 255.0)
        assert psnr(a, b) == pytest.approx(0.0)

    def test_smaller_error_gives_higher_psnr(self, rng):
        reference = rng.normal(128, 20, (8, 8))
        small_error = reference + 1.0
        large_error = reference + 10.0
        assert psnr(reference, small_error) > psnr(reference, large_error)


class TestCompressionRatio:
    def test_basic(self):
        assert compression_ratio(1000, 250) == 4.0

    def test_rejects_zero_compressed(self):
        with pytest.raises(ValueError):
            compression_ratio(100, 0)

    def test_rejects_negative_original(self):
        with pytest.raises(ValueError):
            compression_ratio(-1, 10)
