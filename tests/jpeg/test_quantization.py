"""Tests for quantization tables and scalar quantization."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.jpeg.quantization import (
    MAX_QUANT_STEP,
    MIN_QUANT_STEP,
    QuantizationTable,
    STANDARD_CHROMINANCE_TABLE,
    STANDARD_LUMINANCE_TABLE,
    scale_table_for_quality,
)


class TestStandardTables:
    def test_luminance_table_values(self):
        # A few spot checks against Annex K Table K.1.
        assert STANDARD_LUMINANCE_TABLE[0, 0] == 16
        assert STANDARD_LUMINANCE_TABLE[7, 7] == 99
        assert STANDARD_LUMINANCE_TABLE[0, 7] == 61

    def test_chrominance_table_values(self):
        assert STANDARD_CHROMINANCE_TABLE[0, 0] == 17
        assert STANDARD_CHROMINANCE_TABLE[7, 7] == 99

    def test_high_frequency_steps_are_larger(self):
        # HVS design: the DC step must be smaller than the HF corner step.
        assert STANDARD_LUMINANCE_TABLE[0, 0] < STANDARD_LUMINANCE_TABLE[7, 7]


class TestQualityScaling:
    def test_quality_50_is_identity(self):
        scaled = scale_table_for_quality(STANDARD_LUMINANCE_TABLE, 50)
        np.testing.assert_allclose(scaled, STANDARD_LUMINANCE_TABLE)

    def test_quality_100_gives_unit_steps(self):
        scaled = scale_table_for_quality(STANDARD_LUMINANCE_TABLE, 100)
        np.testing.assert_allclose(scaled, np.ones((8, 8)))

    def test_lower_quality_gives_larger_steps(self):
        q20 = scale_table_for_quality(STANDARD_LUMINANCE_TABLE, 20)
        assert np.all(q20 >= STANDARD_LUMINANCE_TABLE)

    def test_steps_clipped_to_valid_range(self):
        q1 = scale_table_for_quality(STANDARD_LUMINANCE_TABLE, 1)
        assert q1.max() <= MAX_QUANT_STEP
        assert q1.min() >= MIN_QUANT_STEP

    def test_rejects_invalid_quality(self):
        with pytest.raises(ValueError):
            scale_table_for_quality(STANDARD_LUMINANCE_TABLE, 0)
        with pytest.raises(ValueError):
            scale_table_for_quality(STANDARD_LUMINANCE_TABLE, 101)

    @settings(max_examples=30, deadline=None)
    @given(st.integers(min_value=1, max_value=99))
    def test_monotone_in_quality(self, quality):
        lower = scale_table_for_quality(STANDARD_LUMINANCE_TABLE, quality)
        higher = scale_table_for_quality(STANDARD_LUMINANCE_TABLE, quality + 1)
        assert np.all(higher <= lower)


class TestQuantizationTable:
    def test_construction_clips_and_rounds(self):
        table = QuantizationTable(np.full((8, 8), 300.0))
        assert table.values.max() == MAX_QUANT_STEP
        table = QuantizationTable(np.full((8, 8), 2.4))
        assert np.all(table.values == 2)

    def test_rejects_non_positive_steps(self):
        values = np.ones((8, 8))
        values[3, 3] = 0.0
        with pytest.raises(ValueError):
            QuantizationTable(values)

    def test_rejects_wrong_shape(self):
        with pytest.raises(ValueError):
            QuantizationTable(np.ones((4, 4)))

    def test_rejects_nan(self):
        values = np.ones((8, 8))
        values[0, 0] = np.nan
        with pytest.raises(ValueError):
            QuantizationTable(values)

    def test_values_are_read_only(self):
        table = QuantizationTable.flat(4)
        with pytest.raises(ValueError):
            table.values[0, 0] = 9

    def test_quantize_dequantize_error_bounded_by_half_step(self, rng):
        table = QuantizationTable.flat(10)
        coefficients = rng.normal(0, 100, (5, 8, 8))
        recovered = table.dequantize(table.quantize(coefficients))
        assert np.max(np.abs(recovered - coefficients)) <= 5.0 + 1e-9

    def test_quantize_is_integer_valued(self, rng):
        table = QuantizationTable.standard_luminance(50)
        quantized = table.quantize(rng.normal(0, 100, (8, 8)))
        assert quantized.dtype == np.int32

    def test_flat_table(self):
        table = QuantizationTable.flat(7)
        assert np.all(table.values == 7)
        assert table.mean_step() == 7

    def test_scaled_by_quality(self):
        base = QuantizationTable.standard_luminance(50)
        better = base.scaled_by_quality(90)
        assert better.mean_step() < base.mean_step()

    def test_as_zigzag_starts_with_dc_step(self):
        table = QuantizationTable.standard_luminance(50)
        assert table.as_zigzag()[0] == table.values[0, 0]

    def test_larger_steps_produce_more_zeros(self, rng):
        coefficients = rng.normal(0, 30, (20, 8, 8))
        fine = QuantizationTable.flat(2).quantize(coefficients)
        coarse = QuantizationTable.flat(50).quantize(coefficients)
        assert (coarse == 0).sum() > (fine == 0).sum()
