"""Tests for DC DPCM and AC run-length coding."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st
from hypothesis.extra import numpy as hnp

from repro.jpeg.rle import (
    EOB_SYMBOL,
    ZRL_SYMBOL,
    block_symbol_histograms,
    decode_ac,
    encode_ac,
    encode_dc,
)


class TestDcCoding:
    def test_zero_difference(self):
        token = encode_dc(10, 10)
        assert token.symbol == 0
        assert token.amplitude_length == 0

    def test_positive_difference(self):
        token = encode_dc(15, 10)
        assert token.symbol == 3  # category of 5

    def test_negative_difference(self):
        token = encode_dc(10, 15)
        assert token.symbol == 3


class TestAcCoding:
    def test_all_zero_block_is_single_eob(self):
        tokens = encode_ac(np.zeros(63, dtype=int))
        assert len(tokens) == 1
        assert tokens[0].symbol == EOB_SYMBOL

    def test_no_eob_when_last_coefficient_nonzero(self):
        coefficients = np.zeros(63, dtype=int)
        coefficients[-1] = 3
        tokens = encode_ac(coefficients)
        assert tokens[-1].symbol != EOB_SYMBOL

    def test_run_length_encoded_in_high_nibble(self):
        coefficients = np.zeros(63, dtype=int)
        coefficients[5] = 7  # five zeros then a value of category 3
        tokens = encode_ac(coefficients)
        assert tokens[0].symbol == (5 << 4) | 3

    def test_long_zero_runs_use_zrl(self):
        coefficients = np.zeros(63, dtype=int)
        coefficients[20] = 1
        tokens = encode_ac(coefficients)
        assert tokens[0].symbol == ZRL_SYMBOL
        assert tokens[1].symbol == ((20 - 16) << 4) | 1

    def test_rejects_wrong_length(self):
        with pytest.raises(ValueError):
            encode_ac(np.zeros(64, dtype=int))

    def test_roundtrip_simple(self):
        coefficients = np.zeros(63, dtype=int)
        coefficients[[0, 3, 17, 40, 62]] = [5, -2, 100, -1, 7]
        np.testing.assert_array_equal(
            decode_ac(encode_ac(coefficients)), coefficients
        )

    @settings(max_examples=50, deadline=None)
    @given(
        hnp.arrays(
            np.int32, (63,), elements=st.integers(min_value=-200, max_value=200)
        )
    )
    def test_roundtrip_property(self, coefficients):
        np.testing.assert_array_equal(
            decode_ac(encode_ac(coefficients)), coefficients
        )

    @settings(max_examples=30, deadline=None)
    @given(
        hnp.arrays(
            np.int32,
            (63,),
            elements=st.integers(min_value=-5, max_value=5),
        )
    )
    def test_sparser_blocks_need_fewer_tokens(self, coefficients):
        tokens = encode_ac(coefficients)
        nonzero = int(np.count_nonzero(coefficients))
        # Each nonzero coefficient contributes exactly one (run, size) token;
        # ZRL and EOB tokens can only add, never remove.
        assert len(tokens) >= max(nonzero, 1)
        assert sum(
            1 for token in tokens
            if token.symbol not in (EOB_SYMBOL, ZRL_SYMBOL)
        ) == nonzero


class TestHistograms:
    def test_counts_cover_all_blocks(self, rng):
        blocks = rng.integers(-20, 20, size=(10, 64))
        dc_counts, ac_counts = block_symbol_histograms(blocks)
        assert sum(dc_counts.values()) == 10
        assert all(count > 0 for count in ac_counts.values())

    def test_rejects_wrong_shape(self):
        with pytest.raises(ValueError):
            block_symbol_histograms(np.zeros((4, 63)))
