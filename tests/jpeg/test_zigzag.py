"""Tests for zig-zag reordering."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st
from hypothesis.extra import numpy as hnp

from repro.jpeg.zigzag import (
    INVERSE_ZIGZAG_ORDER,
    ZIGZAG_ORDER,
    band_of_zigzag_index,
    inverse_zigzag,
    zigzag,
    zigzag_index_of_band,
)


class TestZigzagOrder:
    def test_is_a_permutation(self):
        assert sorted(ZIGZAG_ORDER.tolist()) == list(range(64))

    def test_starts_with_dc_and_first_diagonal(self):
        # Standard JPEG zig-zag: (0,0), (0,1), (1,0), (2,0), (1,1), (0,2)...
        expected_start = [0, 1, 8, 16, 9, 2, 3, 10]
        assert ZIGZAG_ORDER[:8].tolist() == expected_start

    def test_ends_at_highest_frequency(self):
        assert ZIGZAG_ORDER[-1] == 63

    def test_inverse_is_consistent(self):
        np.testing.assert_array_equal(
            ZIGZAG_ORDER[INVERSE_ZIGZAG_ORDER], np.arange(64)
        )


class TestZigzagTransforms:
    def test_roundtrip_single_block(self, rng):
        block = rng.normal(size=(8, 8))
        np.testing.assert_allclose(inverse_zigzag(zigzag(block)), block)

    def test_roundtrip_stack(self, rng):
        blocks = rng.normal(size=(5, 8, 8))
        np.testing.assert_allclose(inverse_zigzag(zigzag(blocks)), blocks)

    def test_dc_is_first(self):
        block = np.zeros((8, 8))
        block[0, 0] = 42.0
        assert zigzag(block)[0] == 42.0

    def test_corner_is_last(self):
        block = np.zeros((8, 8))
        block[7, 7] = 9.0
        assert zigzag(block)[-1] == 9.0

    def test_rejects_wrong_shapes(self):
        with pytest.raises(ValueError):
            zigzag(np.zeros((4, 4)))
        with pytest.raises(ValueError):
            inverse_zigzag(np.zeros(32))

    @settings(max_examples=25, deadline=None)
    @given(
        hnp.arrays(
            np.float64, (2, 8, 8), elements=st.floats(-1e6, 1e6, allow_nan=False)
        )
    )
    def test_roundtrip_property(self, blocks):
        np.testing.assert_allclose(inverse_zigzag(zigzag(blocks)), blocks)


class TestBandLookups:
    def test_index_of_dc(self):
        assert zigzag_index_of_band(0, 0) == 0

    def test_index_of_corner(self):
        assert zigzag_index_of_band(7, 7) == 63

    def test_band_of_index_roundtrip(self):
        for index in range(64):
            row, col = band_of_zigzag_index(index)
            assert zigzag_index_of_band(row, col) == index

    def test_rejects_out_of_range(self):
        with pytest.raises(ValueError):
            zigzag_index_of_band(8, 0)
        with pytest.raises(ValueError):
            band_of_zigzag_index(64)
