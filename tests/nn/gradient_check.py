"""Numerical gradient checking helpers shared by the layer tests."""

import numpy as np

from repro.nn.losses import SoftmaxCrossEntropy


def check_layer_gradients(
    model,
    inputs,
    labels,
    parameter_samples: int = 3,
    epsilon: float = 1e-6,
    tolerance: float = 5e-4,
    check_input_gradient: bool = True,
    rng=None,
):
    """Compare analytic and numerical gradients of ``model``.

    The model is wrapped in a softmax cross-entropy loss.  A few entries of
    every parameter (and optionally of the input) are perturbed with central
    differences.  Gradients at ReLU/max-pool kinks can legitimately differ,
    so the tolerance is on the absolute difference relative to the gradient
    scale rather than exact equality.
    """
    rng = rng if rng is not None else np.random.default_rng(0)
    loss = SoftmaxCrossEntropy()

    def loss_value():
        return loss.forward(model.forward(inputs, training=True), labels)

    loss_value()
    for parameter in model.parameters():
        parameter.zero_grad()
    model.backward(loss.backward())
    stored_gradients = [parameter.grad.copy() for parameter in model.parameters()]

    worst = 0.0
    for parameter, analytic in zip(model.parameters(), stored_gradients):
        flat_size = parameter.value.size
        sample_indices = rng.choice(
            flat_size, size=min(parameter_samples, flat_size), replace=False
        )
        for flat_index in sample_indices:
            index = np.unravel_index(flat_index, parameter.value.shape)
            original = parameter.value[index]
            parameter.value[index] = original + epsilon
            loss_plus = loss_value()
            parameter.value[index] = original - epsilon
            loss_minus = loss_value()
            parameter.value[index] = original
            numerical = (loss_plus - loss_minus) / (2 * epsilon)
            scale = max(1.0, abs(numerical), abs(analytic[index]))
            worst = max(worst, abs(numerical - analytic[index]) / scale)

    if check_input_gradient:
        loss_value()
        for parameter in model.parameters():
            parameter.zero_grad()
        input_gradient = model.backward(loss.backward())
        flat_size = inputs.size
        for flat_index in rng.choice(flat_size, size=3, replace=False):
            index = np.unravel_index(flat_index, inputs.shape)
            perturbed = inputs.copy()
            perturbed[index] += epsilon
            loss_plus = loss.forward(
                model.forward(perturbed, training=True), labels
            )
            perturbed[index] -= 2 * epsilon
            loss_minus = loss.forward(
                model.forward(perturbed, training=True), labels
            )
            numerical = (loss_plus - loss_minus) / (2 * epsilon)
            scale = max(1.0, abs(numerical), abs(input_gradient[index]))
            worst = max(worst, abs(numerical - input_gradient[index]) / scale)

    assert worst < tolerance, f"max relative gradient error {worst:.2e}"
