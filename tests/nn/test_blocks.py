"""Tests for residual and inception blocks."""

import numpy as np
import pytest

from repro.nn.base import Sequential
from repro.nn.blocks import InceptionBlock, ResidualBlock, _PaddedMaxPool
from repro.nn.dense import Dense
from repro.nn.pooling import GlobalAvgPool2D
from tests.nn.gradient_check import check_layer_gradients


class TestResidualBlock:
    def test_identity_shortcut_shape(self, rng):
        block = ResidualBlock(4, 4, rng=np.random.default_rng(0))
        outputs = block.forward(rng.normal(size=(2, 4, 8, 8)), training=True)
        assert outputs.shape == (2, 4, 8, 8)
        assert block.shortcut is None

    def test_projection_shortcut_used_when_needed(self, rng):
        block = ResidualBlock(4, 8, stride=2, rng=np.random.default_rng(0))
        outputs = block.forward(rng.normal(size=(2, 4, 8, 8)), training=True)
        assert outputs.shape == (2, 8, 4, 4)
        assert block.shortcut is not None

    def test_output_is_non_negative(self, rng):
        block = ResidualBlock(3, 3, rng=np.random.default_rng(1))
        outputs = block.forward(rng.normal(size=(2, 3, 6, 6)), training=True)
        assert np.all(outputs >= 0.0)

    def test_zeroed_body_passes_relu_of_identity(self, rng):
        block = ResidualBlock(2, 2, rng=np.random.default_rng(2))
        for parameter in block.body.parameters():
            parameter.value[...] = 0.0
        inputs = rng.normal(size=(1, 2, 4, 4))
        outputs = block.forward(inputs, training=True)
        np.testing.assert_allclose(outputs, np.maximum(inputs, 0.0), atol=1e-12)

    def test_gradients(self, rng):
        model = Sequential([
            ResidualBlock(2, 3, stride=2, rng=np.random.default_rng(3)),
            GlobalAvgPool2D(),
            Dense(3, 2, rng=np.random.default_rng(4)),
        ])
        inputs = rng.normal(size=(4, 2, 8, 8))
        check_layer_gradients(model, inputs, np.array([0, 1, 1, 0]),
                              tolerance=2e-3)

    def test_parameters_include_shortcut(self):
        plain = ResidualBlock(4, 4, rng=np.random.default_rng(5))
        projected = ResidualBlock(4, 8, rng=np.random.default_rng(5))
        assert len(projected.parameters()) > len(plain.parameters())

    def test_backward_before_forward_raises(self):
        block = ResidualBlock(2, 2, rng=np.random.default_rng(6))
        with pytest.raises(RuntimeError):
            block.backward(np.zeros((1, 2, 4, 4)))


class TestInceptionBlock:
    def test_output_channels_are_concatenated(self, rng):
        block = InceptionBlock(4, 3, 2, 5, 2, 4, 2, rng=np.random.default_rng(0))
        outputs = block.forward(rng.normal(size=(2, 4, 8, 8)), training=True)
        assert block.out_channels == 3 + 5 + 4 + 2
        assert outputs.shape == (2, block.out_channels, 8, 8)

    def test_spatial_size_preserved(self, rng):
        block = InceptionBlock(2, 2, 2, 2, 2, 2, 2, rng=np.random.default_rng(1))
        outputs = block.forward(rng.normal(size=(1, 2, 11, 13)), training=True)
        assert outputs.shape[2:] == (11, 13)

    def test_gradients(self, rng):
        model = Sequential([
            InceptionBlock(2, 2, 2, 3, 2, 2, 2, rng=np.random.default_rng(2)),
            GlobalAvgPool2D(),
            Dense(9, 3, rng=np.random.default_rng(3)),
        ])
        inputs = rng.normal(size=(3, 2, 6, 6))
        check_layer_gradients(model, inputs, np.array([0, 1, 2]),
                              tolerance=2e-3)

    def test_parameters_cover_all_branches(self):
        block = InceptionBlock(2, 2, 2, 2, 2, 2, 2, rng=np.random.default_rng(4))
        # 1x1 branch: 1 conv; 3x3: 2 convs; 5x5: 2 convs; pool: 1 conv.
        assert len(block.parameters()) == 2 * (1 + 2 + 2 + 1)


class TestPaddedMaxPool:
    def test_same_spatial_size(self, rng):
        layer = _PaddedMaxPool()
        inputs = rng.normal(size=(2, 3, 7, 9))
        assert layer.forward(inputs).shape == inputs.shape

    def test_matches_naive_maximum(self, rng):
        layer = _PaddedMaxPool()
        inputs = rng.normal(size=(1, 1, 5, 5))
        outputs = layer.forward(inputs)
        padded = np.pad(inputs[0, 0], 1, mode="constant",
                        constant_values=-np.inf)
        for row in range(5):
            for col in range(5):
                expected = padded[row:row + 3, col:col + 3].max()
                assert outputs[0, 0, row, col] == pytest.approx(expected)

    def test_backward_before_forward_raises(self):
        with pytest.raises(RuntimeError):
            _PaddedMaxPool().backward(np.zeros((1, 1, 4, 4)))
