"""Planned inference engine: parity, caching, storage and arena safety.

The engine's contract (see :mod:`repro.nn.engine`) has four prongs, one
test class each:

- float32/float64 plans are **bit-identical** to the dynamic reference
  path across every model-zoo architecture;
- plans are cached per ``(shape, dtype, storage, fusion signature)``
  with LRU eviction, and invalidated by structural changes;
- float16 activation storage agrees with the float32 reference at the
  accuracy level on a really-trained classifier;
- the arena never aliases two simultaneously-live slots.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.experiments.common import (
    ExperimentConfig,
    make_splits,
    train_classifier,
)
from repro.nn import engine, models
from repro.nn.base import Layer, Sequential
from repro.nn.dense import Dense, Flatten
from repro.nn.engine import PlanError


def _inputs(shape, dtype, seed=0):
    rng = np.random.default_rng(seed)
    return rng.standard_normal(shape).astype(dtype)


class TestBitParity:
    """Planned outputs must be bit-identical to the dynamic path."""

    @pytest.mark.parametrize("dtype", ["float32", "float64"])
    @pytest.mark.parametrize("name", sorted(models.MODEL_BUILDERS))
    def test_plan_matches_dynamic_bitwise(self, name, dtype):
        model = models.build_model(name, num_classes=10, seed=7, dtype=dtype)
        # Five images through batch_size=4 exercises both the full tile
        # and the remainder tile (two distinct plans).
        inputs = _inputs((5, 1, 32, 32), dtype)
        reference = model.predict_proba_dynamic(inputs, batch_size=4)
        planned = engine.predict_proba(model, inputs, batch_size=4)
        assert planned.dtype == reference.dtype
        assert planned.shape == reference.shape
        assert planned.tobytes() == reference.tobytes()
        # The run really went through plans, not the fallback.
        assert engine.get_plan(model, (4, 1, 32, 32)) is not None
        assert engine.get_plan(model, (1, 1, 32, 32)) is not None

    def test_predict_routes_through_engine(self):
        model = models.build_model("AlexNet", num_classes=8, seed=3)
        inputs = _inputs((6, 1, 32, 32), model.dtype)
        labels = model.predict(inputs, batch_size=4)
        reference = np.argmax(
            model.predict_proba_dynamic(inputs, batch_size=4), axis=1
        )
        assert np.array_equal(labels, reference)
        assert model.__dict__.get("_plan_cache")

    def test_dynamic_knob_skips_planning(self):
        model = models.build_model("AlexNet", num_classes=8, seed=3)
        model.inference_engine = "dynamic"
        inputs = _inputs((3, 1, 32, 32), model.dtype)
        planned = engine.predict_proba(model, inputs, batch_size=4)
        reference = model.predict_proba_dynamic(inputs, batch_size=4)
        assert planned.tobytes() == reference.tobytes()
        assert "_plan_cache" not in model.__dict__

    def test_engine_env_var(self, monkeypatch):
        model = models.build_model("AlexNet", num_classes=8, seed=3)
        monkeypatch.setenv(engine.ENGINE_ENV_VAR, "dynamic")
        engine.predict_proba(model, _inputs((2, 1, 32, 32), model.dtype))
        assert "_plan_cache" not in model.__dict__
        monkeypatch.setenv(engine.ENGINE_ENV_VAR, "bogus")
        with pytest.raises(ValueError, match="inference_engine"):
            engine.predict_proba(model, _inputs((2, 1, 32, 32), model.dtype))

    def test_empty_batch_falls_back(self):
        model = models.build_model("AlexNet", num_classes=8, seed=3)
        inputs = _inputs((0, 1, 32, 32), model.dtype)
        with pytest.raises(ValueError):
            # The dynamic reference raises on an empty concatenate; the
            # engine must surface the same error, not invent behaviour.
            engine.predict_proba(model, inputs)


class _Opaque(Layer):
    """A layer without a plan hook (forces the dynamic fallback)."""

    def forward(self, inputs, training=False):
        return inputs

    def backward(self, grad_output):  # pragma: no cover - unused
        return grad_output


class TestPlanCache:
    def _model(self):
        return models.build_model("AlexNet", num_classes=8, seed=3)

    def test_same_shape_hits_cache(self):
        model = self._model()
        first = engine.get_plan(model, (4, 1, 32, 32))
        second = engine.get_plan(model, (4, 1, 32, 32))
        assert first is second

    def test_shape_change_compiles_new_plan(self):
        model = self._model()
        full = engine.get_plan(model, (4, 1, 32, 32))
        remainder = engine.get_plan(model, (1, 1, 32, 32))
        assert full is not remainder
        assert len(model.__dict__["_plan_cache"]) == 2

    def test_storage_change_compiles_new_plan(self):
        model = self._model()
        plain = engine.get_plan(model, (2, 1, 32, 32))
        half = engine.get_plan(model, (2, 1, 32, 32), np.dtype(np.float16))
        assert plain is not half
        assert half.storage_dtype == np.dtype(np.float16)

    def test_fusion_flag_change_misses_cache(self):
        model = self._model()
        fused = engine.get_plan(model, (2, 1, 32, 32))
        model.fuse_inference = False
        unfused = engine.get_plan(model, (2, 1, 32, 32))
        assert fused is not unfused
        # The unfused plan still matches the unfused dynamic walk.
        inputs = _inputs((2, 1, 32, 32), model.dtype)
        assert (
            engine.predict_proba(model, inputs).tobytes()
            == model.predict_proba_dynamic(inputs).tobytes()
        )

    def test_add_invalidates_cache(self):
        model = self._model()
        engine.get_plan(model, (2, 1, 32, 32))
        assert model.__dict__.get("_plan_cache")
        model.add(_Opaque())
        assert "_plan_cache" not in model.__dict__

    def test_lru_eviction_bound(self):
        model = self._model()
        for batch in range(1, engine.PLAN_CACHE_SIZE + 4):
            engine.get_plan(model, (batch, 1, 32, 32))
        assert len(model.__dict__["_plan_cache"]) == engine.PLAN_CACHE_SIZE

    def test_unplannable_model_falls_back(self):
        model = Sequential(
            [Flatten(), _Opaque(), Dense(12, 4, rng=np.random.default_rng(0))]
        )
        assert engine.get_plan(model, (2, 3, 2, 2)) is None
        inputs = _inputs((2, 3, 2, 2), model.dtype)
        planned = engine.predict_proba(model, inputs)
        reference = model.predict_proba_dynamic(inputs)
        assert planned.tobytes() == reference.tobytes()
        # The unplannable verdict is cached, not retried.
        cache = model.__dict__["_plan_cache"]
        assert len(cache) >= 1
        assert engine.get_plan(model, (2, 3, 2, 2)) is None
        assert len(cache) == len(model.__dict__["_plan_cache"])

    def test_compile_plan_raises_plan_error(self):
        model = Sequential([_Opaque()])
        with pytest.raises(PlanError):
            engine.compile_plan(model, (2, 4))

    def test_clear_plan_cache(self):
        model = self._model()
        engine.get_plan(model, (2, 1, 32, 32))
        engine.clear_plan_cache(model)
        assert "_plan_cache" not in model.__dict__


class TestFloat16Storage:
    def test_tiny_accuracy_agrees_with_float32(self):
        config = ExperimentConfig.tiny()
        train, test = make_splits(config)
        classifier = train_classifier(train, config)
        reference = classifier.accuracy_on(test)

        classifier.model.storage_dtype = "float16"
        engine.clear_plan_cache(classifier.model)
        half = classifier.accuracy_on(test)
        # Half-precision storage is an accuracy-level contract, not a
        # bitwise one: the tiny classifier separates classes by a wide
        # margin, so storage rounding must not move top-1 accuracy.
        assert half == pytest.approx(reference, abs=0.02)
        assert reference > 0.5

    def test_probabilities_close_to_reference(self):
        model = models.build_model("VGG-16", num_classes=8, seed=5)
        inputs = _inputs((4, 1, 32, 32), model.dtype)
        reference = model.predict_proba_dynamic(inputs)
        model.storage_dtype = "float16"
        half = engine.predict_proba(model, inputs)
        assert half.dtype == reference.dtype
        np.testing.assert_allclose(half, reference, atol=5e-3)

    def test_storage_equal_to_compute_is_ignored(self):
        from repro.nn.dtype import resolve_storage_dtype

        assert resolve_storage_dtype(None, np.float32) is None
        assert resolve_storage_dtype("float32", np.float32) is None
        assert resolve_storage_dtype("float16", np.float32) == np.float16
        with pytest.raises(ValueError):
            resolve_storage_dtype("int8", np.float32)


class TestArena:
    @pytest.mark.parametrize("name", sorted(models.MODEL_BUILDERS))
    def test_no_aliasing_between_live_slots(self, name):
        model = models.build_model(name, num_classes=10, seed=7)
        plan = engine.compile_plan(model, (3, 1, 32, 32))
        allocations = plan.debug_allocations()
        steps = len(plan.step_info)
        for i, (off_a, size_a, start_a, end_a) in enumerate(allocations):
            for off_b, size_b, start_b, end_b in allocations[i + 1:]:
                bytes_overlap = off_a < off_b + size_b and off_b < off_a + size_a
                if not bytes_overlap:
                    continue
                # Overlapping byte ranges must have disjoint lifetimes:
                # one allocation is freed before the other starts.
                end_a_ = steps if end_a is None else end_a
                end_b_ = steps if end_b is None else end_b
                assert end_a_ <= start_b or end_b_ <= start_a, (
                    f"{name}: allocations at {off_a}+{size_a} "
                    f"[{start_a},{end_a_}) and {off_b}+{size_b} "
                    f"[{start_b},{end_b_}) overlap while both live"
                )

    def test_run_reuses_one_buffer(self):
        model = models.build_model("AlexNet", num_classes=8, seed=3)
        inputs = _inputs((2, 1, 32, 32), model.dtype)
        plan = engine.get_plan(model, inputs.shape)
        first = plan.run(inputs)
        first_copy = first.copy()
        second = plan.run(inputs)
        assert second is first  # same logits view, no per-run allocation
        assert second.tobytes() == first_copy.tobytes()

    def test_run_rejects_wrong_shape(self):
        model = models.build_model("AlexNet", num_classes=8, seed=3)
        plan = engine.get_plan(model, (2, 1, 32, 32))
        with pytest.raises(ValueError, match="compiled for input shape"):
            plan.run(np.zeros((3, 1, 32, 32), dtype=model.dtype))

    def test_arena_is_single_allocation(self):
        model = models.build_model("VGG-16", num_classes=8, seed=3)
        plan = engine.compile_plan(model, (2, 1, 32, 32))
        total = sum(size for _, size, _, _ in plan.debug_allocations())
        # Lifetime reuse must compress the arena well below the sum of
        # all slot sizes (the dynamic path's high-water allocation).
        assert plan.arena_nbytes < total
        assert plan._buffer.nbytes == max(plan.arena_nbytes, 1)


class TestBlasThreadControl:
    def test_thread_limit_none_is_noop(self):
        with engine.blas_thread_limit(None):
            pass

    def test_thread_limit_rejects_nonpositive(self):
        with pytest.raises(ValueError, match="blas_threads"):
            with engine.blas_thread_limit(0):
                pass  # pragma: no cover

    def test_thread_limit_pins_and_restores(self):
        control = engine._resolve_blas_control()
        if control is None or control[0] != "ctypes":
            pytest.skip("no ctypes OpenBLAS control surface")
        _, (set_threads, get_threads) = control
        before = get_threads()
        with engine.blas_thread_limit(1):
            assert get_threads() == 1
        assert get_threads() == before

    def test_results_identical_under_thread_limit(self):
        model = models.build_model("AlexNet", num_classes=8, seed=3)
        inputs = _inputs((3, 1, 32, 32), model.dtype)
        reference = engine.predict_proba(model, inputs)
        model.blas_threads = 1
        pinned = engine.predict_proba(model, inputs)
        assert pinned.tobytes() == reference.tobytes()

    def test_threads_env_var(self, monkeypatch):
        model = models.build_model("AlexNet", num_classes=8, seed=3)
        monkeypatch.setenv(engine.BLAS_THREADS_ENV_VAR, "-2")
        with pytest.raises(ValueError, match="blas_threads"):
            engine.predict_proba(model, _inputs((2, 1, 32, 32), model.dtype))
