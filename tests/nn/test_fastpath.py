"""Parity and determinism tests for the fast NN compute path.

Covers the dtype policy (float32 fast mode vs float64 reference mode),
the in-place optimizer updates (bit-for-bit against the original
allocating formulas in float64), the specialised 2x2 max-pool
tournament, and the inference-mode no-cache behaviour of conv/pooling.
"""

import numpy as np
import pytest

from repro.experiments.common import (
    ExperimentConfig,
    make_splits,
    train_classifier,
)
from repro.nn import models
from repro.nn.base import Parameter, Sequential
from repro.nn.conv import Conv2D
from repro.nn.dense import Dense, Flatten
from repro.nn.optim import SGD, Adam
from repro.nn.pooling import MaxPool2D
from repro.nn.trainer import Trainer


# ----------------------------------------------------------------------
# Reference optimizers: the original allocating formulas, verbatim.
# ----------------------------------------------------------------------


def reference_sgd_step(values, grads, state, lr, momentum, weight_decay):
    new_values = []
    for index, (value, grad) in enumerate(zip(values, grads)):
        if weight_decay:
            grad = grad + weight_decay * value
        if momentum:
            velocity = state.get(index)
            if velocity is None:
                velocity = np.zeros_like(value)
            velocity = momentum * velocity - lr * grad
            state[index] = velocity
            new_values.append(value + velocity)
        else:
            new_values.append(value - lr * grad)
    return new_values


def reference_adam_step(values, grads, state, lr, beta1, beta2, eps,
                        weight_decay):
    new_values = []
    for index, (value, grad) in enumerate(zip(values, grads)):
        if weight_decay:
            grad = grad + weight_decay * value
        slot = state.setdefault(
            index,
            {"step": 0, "m": np.zeros_like(value), "v": np.zeros_like(value)},
        )
        slot["step"] += 1
        slot["m"] = beta1 * slot["m"] + (1.0 - beta1) * grad
        slot["v"] = beta2 * slot["v"] + (1.0 - beta2) * grad * grad
        m_hat = slot["m"] / (1.0 - beta1 ** slot["step"])
        v_hat = slot["v"] / (1.0 - beta2 ** slot["step"])
        new_values.append(value - lr * m_hat / (np.sqrt(v_hat) + eps))
    return new_values


class TestOptimizerBitParity:
    """In-place updates must equal the old formulas bit for bit (float64)."""

    def _run_both(self, optimizer, reference_step, steps=7):
        rng = np.random.default_rng(11)
        shapes = [(4, 3), (8,), (2, 2, 3)]
        initial = [rng.normal(size=shape) for shape in shapes]
        parameters = [
            Parameter(value.copy(), name=f"p{i}")
            for i, value in enumerate(initial)
        ]
        reference_values = [value.copy() for value in initial]
        reference_state = {}
        for _ in range(steps):
            grads = [rng.normal(size=shape) for shape in shapes]
            for parameter, grad in zip(parameters, grads):
                parameter.zero_grad()
                parameter.grad += grad
            optimizer.step(parameters)
            reference_values = reference_step(reference_values, grads,
                                              reference_state)
        for parameter, expected in zip(parameters, reference_values):
            np.testing.assert_array_equal(parameter.value, expected)

    def test_sgd_plain(self):
        self._run_both(
            SGD(learning_rate=0.05),
            lambda v, g, s: reference_sgd_step(v, g, s, 0.05, 0.0, 0.0),
        )

    def test_sgd_momentum_weight_decay(self):
        self._run_both(
            SGD(learning_rate=0.05, momentum=0.9, weight_decay=1e-3),
            lambda v, g, s: reference_sgd_step(v, g, s, 0.05, 0.9, 1e-3),
        )

    def test_adam(self):
        self._run_both(
            Adam(learning_rate=0.002),
            lambda v, g, s: reference_adam_step(
                v, g, s, 0.002, 0.9, 0.999, 1e-8, 0.0
            ),
        )

    def test_adam_weight_decay(self):
        self._run_both(
            Adam(learning_rate=0.002, weight_decay=1e-2),
            lambda v, g, s: reference_adam_step(
                v, g, s, 0.002, 0.9, 0.999, 1e-8, 1e-2
            ),
        )


class TestOptimizerState:
    def test_state_keyed_by_name(self):
        optimizer = Adam(learning_rate=0.1)
        parameter = Parameter(np.zeros(3), name="layer.weight")
        parameter.grad += 1.0
        optimizer.step([parameter])
        assert "layer.weight" in optimizer._state

    def test_state_readable_by_layer_name(self):
        """The state mapping is keyed by layer names (checkpoint-style)."""
        optimizer = SGD(learning_rate=0.1, momentum=0.9)
        parameter = Parameter(np.zeros(2), name="fc.weight")
        parameter.grad += 1.0
        optimizer.step([parameter])
        velocity = optimizer._state["fc.weight"]
        assert np.any(velocity != 0.0)

    def test_identically_named_parameters_do_not_share_state(self):
        optimizer = Adam(learning_rate=0.1)
        first = Parameter(np.zeros(2))
        second = Parameter(np.zeros(2))
        for _ in range(3):
            first.zero_grad()
            second.zero_grad()
            first.grad += 1.0
            second.grad -= 1.0
            optimizer.step([first, second])
        # Symmetric gradients must produce symmetric trajectories, which
        # only holds if each parameter has its own moment estimates.
        np.testing.assert_array_equal(first.value, -second.value)

    def test_no_per_step_allocations_reuse_scratch(self):
        optimizer = Adam(learning_rate=0.01, weight_decay=1e-3)
        parameter = Parameter(np.ones(16), name="w")
        parameter.grad += 0.5
        optimizer.step([parameter])
        buffers = {id(buffer) for buffer in optimizer._scratch.values()}
        parameter.zero_grad()
        parameter.grad += 0.25
        optimizer.step([parameter])
        assert buffers == {
            id(buffer) for buffer in optimizer._scratch.values()
        }


class TestDtypePolicy:
    def test_default_model_is_float32(self):
        model = models.build_model("AlexNet", num_classes=4)
        assert model.dtype == np.float32
        assert all(p.value.dtype == np.float32 for p in model.parameters())

    def test_float64_reference_mode(self):
        model = models.build_model("AlexNet", num_classes=4, dtype="float64")
        assert model.dtype == np.float64

    def test_same_seed_same_weights_across_dtypes(self):
        fast = models.build_model("VGG-16", num_classes=4, seed=3)
        reference = models.build_model(
            "VGG-16", num_classes=4, seed=3, dtype="float64"
        )
        for p32, p64 in zip(fast.parameters(), reference.parameters()):
            np.testing.assert_array_equal(
                p32.value, p64.value.astype(np.float32)
            )

    def test_forward_output_dtype_follows_model(self, rng):
        inputs = rng.normal(size=(2, 1, 32, 32))
        for dtype in ("float32", "float64"):
            model = models.build_model("AlexNet", num_classes=4, dtype=dtype)
            logits = model.forward(inputs, training=False)
            assert logits.dtype == np.dtype(dtype)

    def test_rejects_unsupported_dtype(self):
        with pytest.raises(ValueError):
            models.build_model("AlexNet", num_classes=4, dtype="float16")

    def test_trainer_infers_model_dtype(self):
        model = models.build_model("AlexNet", num_classes=4)
        assert Trainer(model).dtype == np.float32


class TestTrainingDeterminismAcrossDtypes:
    """Fast float32 training is deterministic and agrees with float64."""

    @pytest.fixture(scope="class")
    def tiny_runs(self):
        config = ExperimentConfig.tiny()
        train, test = make_splits(config)
        accuracies = {}
        for dtype in ("float32", "float64"):
            run_config = config.with_overrides(compute_dtype=dtype)
            classifier = train_classifier(train, run_config)
            accuracies[dtype] = classifier.accuracy_on(test)
        return train, test, accuracies

    def test_float32_training_is_deterministic(self):
        config = ExperimentConfig.tiny().with_overrides(epochs=3)
        train, test = make_splits(config)
        first = train_classifier(train, config)
        second = train_classifier(train, config)
        for p1, p2 in zip(first.model.parameters(), second.model.parameters()):
            np.testing.assert_array_equal(p1.value, p2.value)
        assert first.accuracy_on(test) == second.accuracy_on(test)

    def test_dtypes_agree_on_tiny_config(self, tiny_runs):
        _, _, accuracies = tiny_runs
        assert accuracies["float32"] == pytest.approx(
            accuracies["float64"], abs=0.1
        )

    def test_both_dtypes_learn(self, tiny_runs):
        _, _, accuracies = tiny_runs
        chance = 1.0 / 8.0
        assert accuracies["float32"] > 2 * chance
        assert accuracies["float64"] > 2 * chance


class TestMaxPoolFastPath:
    def _generic(self):
        # stride == pool but not 2x2 exercises the generic patch path;
        # compare a 2x2 layer against a manually de-specialised twin.
        layer = MaxPool2D(2)
        generic = MaxPool2D(2)
        generic._is_2x2 = lambda: False
        return layer, generic

    @pytest.mark.parametrize("shape", [(2, 3, 8, 8), (1, 2, 7, 9), (3, 1, 2, 2)])
    def test_tournament_matches_generic_forward(self, shape, rng):
        layer, generic = self._generic()
        inputs = rng.normal(size=shape)
        for training in (False, True):
            np.testing.assert_array_equal(
                layer.forward(inputs, training=training),
                generic.forward(inputs, training=training),
            )

    def test_tournament_matches_generic_on_ties(self):
        layer, generic = self._generic()
        inputs = np.zeros((2, 2, 4, 4))  # every window is a 4-way tie
        grad = np.ones((2, 2, 2, 2))
        out_fast = layer.forward(inputs, training=True)
        out_generic = generic.forward(inputs, training=True)
        np.testing.assert_array_equal(out_fast, out_generic)
        np.testing.assert_array_equal(
            layer.backward(grad), generic.backward(grad)
        )

    @pytest.mark.parametrize("shape", [(2, 3, 8, 8), (1, 2, 7, 9)])
    def test_tournament_matches_generic_backward(self, shape, rng):
        layer, generic = self._generic()
        inputs = rng.normal(size=shape)
        layer.forward(inputs, training=True)
        generic.forward(inputs, training=True)
        out_h, out_w = shape[2] // 2, shape[3] // 2
        grad = rng.normal(size=(shape[0], shape[1], out_h, out_w))
        np.testing.assert_array_equal(
            layer.backward(grad), generic.backward(grad)
        )

    def test_float32_output_dtype(self, rng):
        inputs = rng.normal(size=(2, 2, 4, 4)).astype(np.float32)
        layer = MaxPool2D(2)
        assert layer.forward(inputs, training=True).dtype == np.float32
        grad = np.ones((2, 2, 2, 2), dtype=np.float32)
        assert layer.backward(grad).dtype == np.float32


class TestInferenceCaching:
    def test_conv_does_not_cache_patches_in_inference(self, rng):
        layer = Conv2D(2, 3, 3, padding=1, rng=np.random.default_rng(0))
        layer.forward(rng.normal(size=(2, 2, 6, 6)), training=False)
        _, patches, inputs = layer._cache
        assert patches is None
        assert inputs is not None
        layer.forward(rng.normal(size=(2, 2, 6, 6)), training=True)
        _, patches, inputs = layer._cache
        assert patches is not None
        assert inputs is None

    def test_backward_after_inference_forward(self, rng):
        """The saliency path: inference forward, then a full backward."""
        inputs = rng.normal(size=(2, 1, 8, 8))
        reference = Sequential([
            Conv2D(1, 2, 3, padding=1, rng=np.random.default_rng(1)),
            MaxPool2D(2),
            Flatten(),
            Dense(2 * 4 * 4, 3, rng=np.random.default_rng(2)),
        ])
        grad_logits = rng.normal(size=(2, 3))
        reference.forward(inputs, training=True)
        expected = reference.backward(grad_logits)
        reference.forward(inputs, training=False)
        actual = reference.backward(grad_logits)
        np.testing.assert_allclose(actual, expected)

    def test_pointwise_conv_gradient_survives_next_step(self, rng):
        """1x1 conv input gradients must not alias the reused scratch."""
        layer = Conv2D(3, 2, 1, rng=np.random.default_rng(5))
        first_inputs = rng.normal(size=(2, 3, 4, 4))
        layer.forward(first_inputs, training=True)
        grad = layer.backward(np.ones((2, 2, 4, 4)))
        retained = grad.copy()
        layer.forward(rng.normal(size=(2, 3, 4, 4)), training=True)
        layer.backward(rng.normal(size=(2, 2, 4, 4)))
        np.testing.assert_array_equal(grad, retained)

    def test_trainer_skips_first_layer_input_gradient(self, rng):
        conv = Conv2D(1, 2, 3, padding=1, rng=np.random.default_rng(3))
        model = Sequential([conv, Flatten(), Dense(2 * 16, 2,
                                                   rng=np.random.default_rng(4))])
        inputs = rng.normal(size=(4, 1, 4, 4))
        logits = model.forward(inputs, training=True)
        result = model.backward(np.ones_like(logits), need_input_grad=False)
        assert result is None
        assert np.isfinite(conv.weight.grad).all()
        assert np.any(conv.weight.grad != 0.0)
