"""Parity of the fused conv→ReLU inference epilogue."""

import numpy as np
import pytest

from repro.nn import models
from repro.nn.activations import ReLU
from repro.nn.base import Sequential
from repro.nn.conv import Conv2D


def _disable_fusion(layer) -> None:
    """Recursively turn off inference fusion in every nested Sequential."""
    if isinstance(layer, Sequential):
        layer.fuse_inference = False
    for child in getattr(layer, "layers", []):
        _disable_fusion(child)
    for attribute in vars(layer).values():
        if isinstance(attribute, Sequential):
            _disable_fusion(attribute)


def _model_pair(name, dtype="float32"):
    fused = models.build_model(
        name, num_classes=3, input_shape=(1, 16, 16), seed=0, dtype=dtype
    )
    plain = models.build_model(
        name, num_classes=3, input_shape=(1, 16, 16), seed=0, dtype=dtype
    )
    _disable_fusion(plain)
    return fused, plain


@pytest.fixture(scope="module")
def inputs():
    rng = np.random.default_rng(3)
    return rng.normal(size=(4, 1, 16, 16))


@pytest.mark.parametrize("name", sorted(models.MODEL_BUILDERS))
def test_fused_inference_matches_unfused(name, inputs):
    fused, plain = _model_pair(name)
    x = inputs.astype(np.float32)
    assert np.array_equal(fused.predict_proba(x), plain.predict_proba(x))


def test_fused_inference_matches_unfused_float64(inputs):
    fused, plain = _model_pair("AlexNet", dtype="float64")
    assert np.array_equal(
        fused.predict_proba(inputs), plain.predict_proba(inputs)
    )


def test_training_forward_never_fuses(inputs):
    """The fused epilogue is inference-only: training paths are identical
    object-for-object (ReLU caches its own mask for backward)."""
    fused, plain = _model_pair("AlexNet")
    x = inputs.astype(np.float32)
    out_fused = fused.forward(x, training=True)
    out_plain = plain.forward(x, training=True)
    assert np.array_equal(out_fused, out_plain)
    relu = next(l for l in fused.layers if isinstance(l, ReLU))
    assert relu._mask is not None  # the un-fused forward ran


def test_backward_after_fused_inference_matches(inputs):
    """The saliency path (backward after an inference forward) sees the
    same gradients whether or not the forward was fused."""
    from repro.analysis.sensitivity import input_gradient

    fused, plain = _model_pair("AlexNet")
    x = inputs.astype(np.float32)
    targets = np.zeros(x.shape[0], dtype=np.intp)
    np.testing.assert_array_equal(
        input_gradient(fused, x, targets), input_gradient(plain, x, targets)
    )


def test_relu_backward_before_any_forward_raises():
    relu = ReLU()
    with pytest.raises(RuntimeError):
        relu.backward(np.ones((2, 2)))


def test_fusion_applies_in_place_on_conv_output():
    rng = np.random.default_rng(0)
    conv = Conv2D(1, 2, 3, rng=rng, dtype="float32")
    relu = ReLU()
    model = Sequential([conv, relu])
    x = rng.normal(size=(2, 1, 8, 8)).astype(np.float32)
    out = model.forward(x, training=False)
    assert out.min() >= 0.0
    # The skipped ReLU received the fused buffer for later backward use.
    assert relu._fused_output is not None
    assert relu._fused_output.base is out or relu._fused_output is out
    reference = np.maximum(conv.forward(x, training=False), 0.0)
    np.testing.assert_array_equal(out, reference)
