"""Tests for the im2col / col2im transforms."""

import numpy as np
import pytest

from repro.nn.im2col import col2im, conv_output_size, im2col


class TestConvOutputSize:
    @pytest.mark.parametrize(
        "size, kernel, stride, pad, expected",
        [(8, 3, 1, 1, 8), (8, 3, 1, 0, 6), (8, 2, 2, 0, 4), (7, 3, 2, 1, 4)],
    )
    def test_known_geometries(self, size, kernel, stride, pad, expected):
        assert conv_output_size(size, kernel, stride, pad) == expected

    def test_invalid_geometry_raises(self):
        with pytest.raises(ValueError):
            conv_output_size(2, 5, 1, 0)


class TestIm2col:
    def test_patch_count_and_width(self, rng):
        images = rng.normal(size=(2, 3, 8, 8))
        columns = im2col(images, 3, 3, 1, 1)
        assert columns.shape == (2 * 8 * 8, 3 * 3 * 3)

    def test_single_pixel_kernel_is_reshape(self, rng):
        images = rng.normal(size=(1, 2, 4, 4))
        columns = im2col(images, 1, 1, 1, 0)
        np.testing.assert_allclose(
            columns, images.transpose(0, 2, 3, 1).reshape(16, 2)
        )

    def test_patch_content_matches_manual_extraction(self, rng):
        images = rng.normal(size=(1, 1, 5, 5))
        columns = im2col(images, 3, 3, 1, 0)
        manual_first_patch = images[0, 0, 0:3, 0:3].reshape(-1)
        np.testing.assert_allclose(columns[0], manual_first_patch)

    def test_rejects_non_nchw(self):
        with pytest.raises(ValueError):
            im2col(np.zeros((8, 8)), 3, 3, 1, 1)


class TestCol2im:
    def test_adjoint_property(self, rng):
        # col2im is the adjoint of im2col: <im2col(x), y> == <x, col2im(y)>.
        input_shape = (2, 3, 6, 6)
        images = rng.normal(size=input_shape)
        columns = im2col(images, 3, 3, 1, 1)
        cotangent = rng.normal(size=columns.shape)
        lhs = np.sum(columns * cotangent)
        rhs = np.sum(images * col2im(cotangent, input_shape, 3, 3, 1, 1))
        assert lhs == pytest.approx(rhs)

    def test_non_overlapping_roundtrip(self, rng):
        # With stride == kernel size the patches tile the image exactly, so
        # col2im(im2col(x)) == x.
        images = rng.normal(size=(2, 2, 8, 8))
        columns = im2col(images, 2, 2, 2, 0)
        np.testing.assert_allclose(
            col2im(columns, images.shape, 2, 2, 2, 0), images
        )

    def test_overlap_accumulates(self):
        images = np.ones((1, 1, 3, 3))
        columns = im2col(images, 3, 3, 1, 1)
        restored = col2im(columns, images.shape, 3, 3, 1, 1)
        # The centre pixel is covered by all 9 patches, corners by 4.
        assert restored[0, 0, 1, 1] == pytest.approx(9.0)
        assert restored[0, 0, 0, 0] == pytest.approx(4.0)
