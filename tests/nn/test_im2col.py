"""Tests for the im2col / col2im transforms."""

import numpy as np
import pytest

from repro.nn.im2col import (
    col2im,
    col2im_patches,
    col2im_scalar,
    conv_output_size,
    im2col,
    im2col_patches,
    im2col_scalar,
)

#: Geometries spanning the interesting cases: unit kernels, stride over
#: kernel (gaps), stride under kernel (overlapping pooling windows),
#: non-square spatial sizes, padding, and padded strided convolutions.
GEOMETRIES = [
    # (batch, channels, height, width, kernel_h, kernel_w, stride, pad)
    (2, 3, 8, 8, 3, 3, 1, 1),
    (1, 1, 5, 5, 3, 3, 1, 0),
    (2, 2, 8, 8, 2, 2, 2, 0),
    (1, 2, 9, 7, 3, 3, 2, 1),
    (2, 1, 6, 6, 3, 3, 2, 0),    # overlapping pooling windows
    (1, 3, 7, 7, 2, 2, 1, 0),    # maximally overlapping
    (1, 1, 8, 8, 2, 2, 3, 0),    # stride > kernel leaves gaps
    (2, 2, 4, 4, 1, 1, 1, 0),    # pointwise
    (1, 1, 10, 6, 5, 3, 2, 2),   # rectangular kernel, pad 2
]


class TestConvOutputSize:
    @pytest.mark.parametrize(
        "size, kernel, stride, pad, expected",
        [(8, 3, 1, 1, 8), (8, 3, 1, 0, 6), (8, 2, 2, 0, 4), (7, 3, 2, 1, 4)],
    )
    def test_known_geometries(self, size, kernel, stride, pad, expected):
        assert conv_output_size(size, kernel, stride, pad) == expected

    def test_invalid_geometry_raises(self):
        with pytest.raises(ValueError):
            conv_output_size(2, 5, 1, 0)


class TestIm2col:
    def test_patch_count_and_width(self, rng):
        images = rng.normal(size=(2, 3, 8, 8))
        columns = im2col(images, 3, 3, 1, 1)
        assert columns.shape == (2 * 8 * 8, 3 * 3 * 3)

    def test_single_pixel_kernel_is_reshape(self, rng):
        images = rng.normal(size=(1, 2, 4, 4))
        columns = im2col(images, 1, 1, 1, 0)
        np.testing.assert_allclose(
            columns, images.transpose(0, 2, 3, 1).reshape(16, 2)
        )

    def test_patch_content_matches_manual_extraction(self, rng):
        images = rng.normal(size=(1, 1, 5, 5))
        columns = im2col(images, 3, 3, 1, 0)
        manual_first_patch = images[0, 0, 0:3, 0:3].reshape(-1)
        np.testing.assert_allclose(columns[0], manual_first_patch)

    def test_rejects_non_nchw(self):
        with pytest.raises(ValueError):
            im2col(np.zeros((8, 8)), 3, 3, 1, 1)


class TestCol2im:
    def test_adjoint_property(self, rng):
        # col2im is the adjoint of im2col: <im2col(x), y> == <x, col2im(y)>.
        input_shape = (2, 3, 6, 6)
        images = rng.normal(size=input_shape)
        columns = im2col(images, 3, 3, 1, 1)
        cotangent = rng.normal(size=columns.shape)
        lhs = np.sum(columns * cotangent)
        rhs = np.sum(images * col2im(cotangent, input_shape, 3, 3, 1, 1))
        assert lhs == pytest.approx(rhs)

    def test_non_overlapping_roundtrip(self, rng):
        # With stride == kernel size the patches tile the image exactly, so
        # col2im(im2col(x)) == x.
        images = rng.normal(size=(2, 2, 8, 8))
        columns = im2col(images, 2, 2, 2, 0)
        np.testing.assert_allclose(
            col2im(columns, images.shape, 2, 2, 2, 0), images
        )

    def test_overlap_accumulates(self):
        images = np.ones((1, 1, 3, 3))
        columns = im2col(images, 3, 3, 1, 1)
        restored = col2im(columns, images.shape, 3, 3, 1, 1)
        # The centre pixel is covered by all 9 patches, corners by 4.
        assert restored[0, 0, 1, 1] == pytest.approx(9.0)
        assert restored[0, 0, 0, 0] == pytest.approx(4.0)


@pytest.mark.parametrize("geometry", GEOMETRIES)
class TestFastPathParity:
    """Fast paths against the scalar references, across geometries."""

    def test_im2col_matches_scalar(self, geometry, rng):
        batch, channels, height, width, kh, kw, stride, pad = geometry
        images = rng.normal(size=(batch, channels, height, width))
        np.testing.assert_array_equal(
            im2col(images, kh, kw, stride, pad),
            im2col_scalar(images, kh, kw, stride, pad),
        )

    def test_im2col_patches_matches_scalar(self, geometry, rng):
        batch, channels, height, width, kh, kw, stride, pad = geometry
        images = rng.normal(size=(batch, channels, height, width))
        out_h = conv_output_size(height, kh, stride, pad)
        out_w = conv_output_size(width, kw, stride, pad)
        patches = im2col_patches(images, kh, kw, stride, pad)
        assert patches.shape == (batch, channels * kh * kw, out_h * out_w)
        # The patch tensor is the row layout with (pixel, feature) axes
        # swapped per sample.
        rows = im2col_scalar(images, kh, kw, stride, pad)
        expected = rows.reshape(
            batch, out_h * out_w, channels * kh * kw
        ).transpose(0, 2, 1)
        np.testing.assert_array_equal(patches, expected)

    def test_col2im_matches_scalar(self, geometry, rng):
        batch, channels, height, width, kh, kw, stride, pad = geometry
        out_h = conv_output_size(height, kh, stride, pad)
        out_w = conv_output_size(width, kw, stride, pad)
        columns = rng.normal(
            size=(batch * out_h * out_w, channels * kh * kw)
        )
        input_shape = (batch, channels, height, width)
        np.testing.assert_array_equal(
            col2im(columns, input_shape, kh, kw, stride, pad),
            col2im_scalar(columns, input_shape, kh, kw, stride, pad),
        )

    def test_col2im_patches_matches_scalar(self, geometry, rng):
        batch, channels, height, width, kh, kw, stride, pad = geometry
        out_h = conv_output_size(height, kh, stride, pad)
        out_w = conv_output_size(width, kw, stride, pad)
        patches = rng.normal(
            size=(batch, channels * kh * kw, out_h * out_w)
        )
        input_shape = (batch, channels, height, width)
        rows = patches.transpose(0, 2, 1).reshape(
            batch * out_h * out_w, channels * kh * kw
        )
        np.testing.assert_array_equal(
            col2im_patches(patches, input_shape, kh, kw, stride, pad),
            col2im_scalar(rows, input_shape, kh, kw, stride, pad),
        )

    def test_adjoint_property_fast(self, geometry, rng):
        batch, channels, height, width, kh, kw, stride, pad = geometry
        input_shape = (batch, channels, height, width)
        images = rng.normal(size=input_shape)
        columns = im2col(images, kh, kw, stride, pad)
        cotangent = rng.normal(size=columns.shape)
        lhs = np.sum(columns * cotangent)
        rhs = np.sum(images * col2im(cotangent, input_shape, kh, kw, stride, pad))
        assert lhs == pytest.approx(rhs)


class TestDtypeAndScratch:
    def test_im2col_preserves_float32(self, rng):
        images = rng.normal(size=(2, 3, 8, 8)).astype(np.float32)
        assert im2col(images, 3, 3, 1, 1).dtype == np.float32
        assert im2col_patches(images, 3, 3, 1, 1).dtype == np.float32

    def test_col2im_preserves_float32(self, rng):
        columns = rng.normal(size=(2 * 16, 4)).astype(np.float32)
        out = col2im(columns, (2, 1, 8, 8), 2, 2, 2, 0)
        assert out.dtype == np.float32

    def test_scratch_buffer_reused(self, rng):
        images = rng.normal(size=(2, 3, 8, 8))
        first = im2col_patches(images, 3, 3, 1, 1)
        second = im2col_patches(images, 3, 3, 1, 1, out=first)
        assert second is first

    def test_mismatched_scratch_ignored(self, rng):
        images = rng.normal(size=(2, 3, 8, 8))
        wrong = np.empty((1, 1), dtype=np.float64)
        result = im2col_patches(images, 3, 3, 1, 1, out=wrong)
        assert result is not wrong
        np.testing.assert_array_equal(
            result, im2col_patches(images, 3, 3, 1, 1)
        )
