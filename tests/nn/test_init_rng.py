"""Regression tests for the centralized rng-less construction fallback.

``repro lint`` rule R3 flagged five unseeded ``default_rng()`` fallbacks
scattered across the layer modules; they now all route through
:func:`repro.nn.init.fallback_rng`, which spawns every convenience
generator from one module-level SeedSequence.
"""

from __future__ import annotations

import ast
import os

import numpy as np

from repro.nn.blocks import ResidualBlock
from repro.nn.conv import Conv2D
from repro.nn.dense import Dense
from repro.nn.init import fallback_rng

SRC_NN = os.path.join(
    os.path.dirname(__file__), "..", "..", "src", "repro", "nn"
)


class TestFallbackRng:
    def test_given_generator_is_returned_unchanged(self):
        rng = np.random.default_rng(7)
        assert fallback_rng(rng) is rng

    def test_none_yields_a_generator(self):
        assert isinstance(fallback_rng(None), np.random.Generator)

    def test_successive_fallbacks_are_distinct_streams(self):
        first = fallback_rng().random(8)
        second = fallback_rng().random(8)
        assert not np.array_equal(first, second)


class TestLayerConstructionWithoutRng:
    def test_dense_layers_get_distinct_weights(self):
        a = Dense(16, 16)
        b = Dense(16, 16)
        assert not np.array_equal(a.weight.value, b.weight.value)

    def test_conv_layers_get_distinct_weights(self):
        a = Conv2D(3, 8, kernel_size=3)
        b = Conv2D(3, 8, kernel_size=3)
        assert not np.array_equal(a.weight.value, b.weight.value)

    def test_residual_block_builds_without_rng(self):
        block = ResidualBlock(3, 8)
        out = block.forward(np.zeros((2, 3, 8, 8), dtype=np.float64))
        assert out.shape[0] == 2

    def test_explicit_rng_is_still_reproducible(self):
        a = Dense(16, 16, rng=np.random.default_rng(11))
        b = Dense(16, 16, rng=np.random.default_rng(11))
        np.testing.assert_array_equal(a.weight.value, b.weight.value)


class TestNoUnseededFallbacksRemain:
    def test_layer_modules_have_no_bare_default_rng(self):
        """AST sweep: no ``default_rng()`` without a seed in repro.nn."""
        offenders = []
        for name in sorted(os.listdir(SRC_NN)):
            if not name.endswith(".py"):
                continue
            path = os.path.join(SRC_NN, name)
            with open(path, "r", encoding="utf-8") as handle:
                tree = ast.parse(handle.read(), filename=name)
            for node in ast.walk(tree):
                if not isinstance(node, ast.Call):
                    continue
                func = node.func
                called = (
                    func.attr if isinstance(func, ast.Attribute)
                    else getattr(func, "id", None)
                )
                if called == "default_rng" and not (
                    node.args or node.keywords
                ):
                    offenders.append(f"{name}:{node.lineno}")
        assert offenders == []
