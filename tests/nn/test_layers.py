"""Tests for convolution, dense and activation layers."""

import numpy as np
import pytest

from repro.nn.activations import LeakyReLU, ReLU, Tanh
from repro.nn.base import Sequential
from repro.nn.conv import Conv2D
from repro.nn.dense import Dense, Flatten
from tests.nn.gradient_check import check_layer_gradients


class TestConv2D:
    def test_output_shape(self, rng):
        layer = Conv2D(3, 5, 3, stride=1, padding=1, rng=rng)
        outputs = layer.forward(rng.normal(size=(2, 3, 8, 8)))
        assert outputs.shape == (2, 5, 8, 8)

    def test_stride_reduces_spatial_size(self, rng):
        layer = Conv2D(1, 2, 3, stride=2, padding=1, rng=rng)
        outputs = layer.forward(rng.normal(size=(1, 1, 8, 8)))
        assert outputs.shape == (1, 2, 4, 4)

    def test_identity_kernel_passthrough(self):
        layer = Conv2D(1, 1, 1, rng=np.random.default_rng(0))
        layer.weight.value[...] = 1.0
        layer.bias.value[...] = 0.0
        inputs = np.arange(16, dtype=float).reshape(1, 1, 4, 4)
        np.testing.assert_allclose(layer.forward(inputs), inputs)

    def test_bias_added_per_channel(self, rng):
        layer = Conv2D(1, 2, 1, rng=rng)
        layer.weight.value[...] = 0.0
        layer.bias.value[:] = [3.0, -1.0]
        outputs = layer.forward(np.zeros((1, 1, 4, 4)))
        np.testing.assert_allclose(outputs[0, 0], 3.0)
        np.testing.assert_allclose(outputs[0, 1], -1.0)

    def test_matches_manual_convolution(self, rng):
        layer = Conv2D(1, 1, 3, padding=0, rng=rng)
        inputs = rng.normal(size=(1, 1, 5, 5))
        outputs = layer.forward(inputs)
        kernel = layer.weight.value[0, 0]
        expected = np.zeros((3, 3))
        for i in range(3):
            for j in range(3):
                expected[i, j] = np.sum(
                    inputs[0, 0, i:i + 3, j:j + 3] * kernel
                ) + layer.bias.value[0]
        np.testing.assert_allclose(outputs[0, 0], expected)

    def test_gradients(self, rng):
        model = Sequential([
            Conv2D(2, 3, 3, padding=1, rng=np.random.default_rng(1)),
            Flatten(),
            Dense(3 * 6 * 6, 4, rng=np.random.default_rng(2)),
        ])
        inputs = rng.normal(size=(3, 2, 6, 6))
        labels = np.array([0, 1, 3])
        check_layer_gradients(model, inputs, labels)

    def test_rejects_wrong_channel_count(self, rng):
        layer = Conv2D(3, 4, 3, rng=rng)
        with pytest.raises(ValueError):
            layer.forward(rng.normal(size=(1, 2, 8, 8)))

    def test_rejects_invalid_construction(self):
        with pytest.raises(ValueError):
            Conv2D(0, 4, 3)
        with pytest.raises(ValueError):
            Conv2D(1, 4, 3, stride=0)

    def test_backward_before_forward_raises(self, rng):
        layer = Conv2D(1, 1, 3, rng=rng)
        with pytest.raises(RuntimeError):
            layer.backward(np.zeros((1, 1, 6, 6)))

    def test_parameter_count(self, rng):
        layer = Conv2D(3, 8, 5, rng=rng)
        assert layer.parameter_count() == 3 * 8 * 25 + 8


class TestDense:
    def test_output_shape(self, rng):
        layer = Dense(10, 4, rng=rng)
        assert layer.forward(rng.normal(size=(7, 10))).shape == (7, 4)

    def test_linear_map(self):
        layer = Dense(2, 2, rng=np.random.default_rng(0))
        layer.weight.value[...] = np.array([[1.0, 2.0], [3.0, 4.0]])
        layer.bias.value[:] = [1.0, -1.0]
        outputs = layer.forward(np.array([[1.0, 1.0]]))
        np.testing.assert_allclose(outputs, [[5.0, 5.0]])

    def test_gradients(self, rng):
        model = Sequential([Dense(6, 5, rng=np.random.default_rng(3)),
                            Dense(5, 3, rng=np.random.default_rng(4))])
        inputs = rng.normal(size=(4, 6))
        labels = np.array([0, 2, 1, 2])
        check_layer_gradients(model, inputs, labels)

    def test_rejects_wrong_feature_count(self, rng):
        layer = Dense(8, 2, rng=rng)
        with pytest.raises(ValueError):
            layer.forward(rng.normal(size=(4, 9)))


class TestFlatten:
    def test_flatten_and_restore(self, rng):
        layer = Flatten()
        inputs = rng.normal(size=(2, 3, 4, 5))
        flattened = layer.forward(inputs)
        assert flattened.shape == (2, 60)
        restored = layer.backward(flattened)
        assert restored.shape == inputs.shape


class TestActivations:
    def test_relu_forward(self):
        layer = ReLU()
        np.testing.assert_allclose(
            layer.forward(np.array([-1.0, 0.0, 2.0])), [0.0, 0.0, 2.0]
        )

    def test_relu_backward_masks_gradient(self):
        layer = ReLU()
        layer.forward(np.array([-1.0, 3.0]))
        np.testing.assert_allclose(
            layer.backward(np.array([10.0, 10.0])), [0.0, 10.0]
        )

    def test_leaky_relu_keeps_negative_slope(self):
        layer = LeakyReLU(0.1)
        np.testing.assert_allclose(
            layer.forward(np.array([-2.0, 4.0])), [-0.2, 4.0]
        )
        np.testing.assert_allclose(
            layer.backward(np.array([1.0, 1.0])), [0.1, 1.0]
        )

    def test_tanh_gradient(self):
        layer = Tanh()
        outputs = layer.forward(np.array([0.5]))
        gradient = layer.backward(np.array([1.0]))
        np.testing.assert_allclose(gradient, 1.0 - outputs ** 2)

    def test_backward_before_forward_raises(self):
        with pytest.raises(RuntimeError):
            ReLU().backward(np.zeros(3))
        with pytest.raises(RuntimeError):
            Tanh().backward(np.zeros(3))


class TestSequential:
    def test_forward_applies_in_order(self):
        model = Sequential([ReLU(), ReLU()])
        inputs = np.array([[-1.0, 2.0]])
        np.testing.assert_allclose(model.forward(inputs), [[0.0, 2.0]])

    def test_add_chains(self):
        model = Sequential()
        assert model.add(ReLU()) is model
        assert len(model) == 1

    def test_parameters_aggregated(self, rng):
        model = Sequential([Dense(4, 3, rng=rng), Dense(3, 2, rng=rng)])
        assert len(model.parameters()) == 4

    def test_predict_returns_class_indices(self, rng):
        model = Sequential([Dense(5, 3, rng=rng)])
        predictions = model.predict(rng.normal(size=(10, 5)))
        assert predictions.shape == (10,)
        assert predictions.min() >= 0
        assert predictions.max() < 3

    def test_predict_proba_rows_sum_to_one(self, rng):
        model = Sequential([Dense(5, 3, rng=rng)])
        probabilities = model.predict_proba(rng.normal(size=(6, 5)))
        np.testing.assert_allclose(probabilities.sum(axis=1), 1.0)
