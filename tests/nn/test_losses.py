"""Tests for losses and softmax."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st
from hypothesis.extra import numpy as hnp

from repro.nn.losses import SoftmaxCrossEntropy, softmax


class TestSoftmax:
    def test_rows_sum_to_one(self, rng):
        probabilities = softmax(rng.normal(size=(5, 7)))
        np.testing.assert_allclose(probabilities.sum(axis=1), 1.0)

    def test_invariant_to_constant_shift(self, rng):
        logits = rng.normal(size=(3, 4))
        np.testing.assert_allclose(softmax(logits), softmax(logits + 100.0))

    def test_handles_large_logits(self):
        probabilities = softmax(np.array([[1000.0, 0.0]]))
        assert np.isfinite(probabilities).all()
        assert probabilities[0, 0] == pytest.approx(1.0)

    @settings(max_examples=30, deadline=None)
    @given(
        hnp.arrays(np.float64, (3, 5),
                   elements=st.floats(-50, 50, allow_nan=False))
    )
    def test_probabilities_valid(self, logits):
        probabilities = softmax(logits)
        assert np.all(probabilities >= 0.0)
        np.testing.assert_allclose(probabilities.sum(axis=1), 1.0)


class TestSoftmaxCrossEntropy:
    def test_perfect_prediction_has_low_loss(self):
        loss = SoftmaxCrossEntropy()
        logits = np.array([[100.0, 0.0, 0.0]])
        assert loss.forward(logits, np.array([0])) < 1e-6

    def test_uniform_prediction_loss_is_log_classes(self):
        loss = SoftmaxCrossEntropy()
        logits = np.zeros((4, 8))
        value = loss.forward(logits, np.array([0, 1, 2, 3]))
        assert value == pytest.approx(np.log(8), rel=1e-6)

    def test_gradient_matches_numerical(self, rng):
        loss = SoftmaxCrossEntropy()
        logits = rng.normal(size=(3, 4))
        labels = np.array([1, 0, 3])
        loss.forward(logits, labels)
        analytic = loss.backward()
        epsilon = 1e-6
        for i in range(3):
            for j in range(4):
                perturbed = logits.copy()
                perturbed[i, j] += epsilon
                plus = loss.forward(perturbed, labels)
                perturbed[i, j] -= 2 * epsilon
                minus = loss.forward(perturbed, labels)
                numerical = (plus - minus) / (2 * epsilon)
                assert numerical == pytest.approx(analytic[i, j], abs=1e-5)

    def test_gradient_rows_sum_to_zero(self, rng):
        loss = SoftmaxCrossEntropy()
        logits = rng.normal(size=(5, 6))
        loss.forward(logits, np.array([0, 1, 2, 3, 4]))
        np.testing.assert_allclose(loss.backward().sum(axis=1), 0.0, atol=1e-12)

    def test_rejects_bad_labels(self):
        loss = SoftmaxCrossEntropy()
        with pytest.raises(ValueError):
            loss.forward(np.zeros((2, 3)), np.array([0, 3]))
        with pytest.raises(ValueError):
            loss.forward(np.zeros((2, 3)), np.array([0]))

    def test_backward_before_forward_raises(self):
        with pytest.raises(RuntimeError):
            SoftmaxCrossEntropy().backward()
