"""Tests for the model zoo."""

import numpy as np
import pytest

from repro.nn import models


@pytest.mark.parametrize("name", sorted(models.MODEL_BUILDERS))
class TestAllModels:
    def test_forward_shape(self, name, rng):
        model = models.build_model(name, num_classes=5, input_shape=(1, 32, 32))
        logits = model.forward(rng.normal(size=(2, 1, 32, 32)), training=False)
        assert logits.shape == (2, 5)

    def test_training_forward_and_backward(self, name, rng):
        model = models.build_model(name, num_classes=3, input_shape=(1, 32, 32))
        logits = model.forward(rng.normal(size=(2, 1, 32, 32)), training=True)
        model.backward(np.ones_like(logits))
        assert all(
            np.isfinite(parameter.grad).all() for parameter in model.parameters()
        )

    def test_deterministic_given_seed(self, name, rng):
        inputs = rng.normal(size=(1, 1, 32, 32))
        first = models.build_model(name, num_classes=4, seed=3)
        second = models.build_model(name, num_classes=4, seed=3)
        np.testing.assert_allclose(
            first.forward(inputs, training=False),
            second.forward(inputs, training=False),
        )

    def test_has_trainable_parameters(self, name):
        model = models.build_model(name, num_classes=4)
        assert model.parameter_count() > 1000


class TestSpecificArchitectures:
    def test_resnet50_deeper_than_resnet34(self):
        shallow = models.resnet34_mini()
        deep = models.resnet50_mini()
        assert deep.parameter_count() > shallow.parameter_count()

    def test_googlenet_contains_inception_blocks(self):
        from repro.nn.blocks import InceptionBlock

        model = models.googlenet_mini()
        assert any(isinstance(layer, InceptionBlock) for layer in model.layers)

    def test_resnet_contains_residual_blocks(self):
        from repro.nn.blocks import ResidualBlock

        model = models.resnet34_mini()
        assert any(isinstance(layer, ResidualBlock) for layer in model.layers)

    def test_unknown_model_name_raises(self):
        with pytest.raises(KeyError):
            models.build_model("LeNet")

    def test_input_size_must_support_poolings(self):
        with pytest.raises(ValueError):
            models.alexnet_mini(input_shape=(1, 4, 4))

    def test_multichannel_input_supported(self, rng):
        model = models.vgg_mini(num_classes=2, input_shape=(3, 32, 32))
        logits = model.forward(rng.normal(size=(1, 3, 32, 32)), training=False)
        assert logits.shape == (1, 2)

    def test_builder_registry_matches_paper_names(self):
        assert set(models.MODEL_BUILDERS) == {
            "AlexNet", "VGG-16", "GoogLeNet", "ResNet-34", "ResNet-50"
        }
