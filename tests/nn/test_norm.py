"""Tests for batch normalisation."""

import numpy as np
import pytest

from repro.nn.base import Sequential
from repro.nn.dense import Dense
from repro.nn.norm import BatchNorm2D
from repro.nn.pooling import GlobalAvgPool2D
from tests.nn.gradient_check import check_layer_gradients


class TestBatchNorm2D:
    def test_training_output_is_normalised(self, rng):
        layer = BatchNorm2D(3)
        inputs = rng.normal(5.0, 3.0, size=(8, 3, 4, 4))
        outputs = layer.forward(inputs, training=True)
        np.testing.assert_allclose(outputs.mean(axis=(0, 2, 3)), 0.0, atol=1e-9)
        np.testing.assert_allclose(outputs.std(axis=(0, 2, 3)), 1.0, atol=1e-3)

    def test_gamma_beta_rescale(self, rng):
        layer = BatchNorm2D(2)
        layer.gamma.value[:] = [2.0, 1.0]
        layer.beta.value[:] = [0.0, 5.0]
        inputs = rng.normal(size=(4, 2, 3, 3))
        outputs = layer.forward(inputs, training=True)
        np.testing.assert_allclose(outputs.mean(axis=(0, 2, 3)), [0.0, 5.0],
                                   atol=1e-9)
        np.testing.assert_allclose(outputs.std(axis=(0, 2, 3))[0], 2.0, atol=1e-3)

    def test_running_statistics_updated_only_in_training(self, rng):
        layer = BatchNorm2D(2, momentum=0.5)
        inputs = rng.normal(3.0, 2.0, size=(16, 2, 4, 4))
        layer.forward(inputs, training=False)
        np.testing.assert_allclose(layer.running_mean, 0.0)
        layer.forward(inputs, training=True)
        assert np.all(layer.running_mean > 0.5)

    def test_inference_uses_running_statistics(self, rng):
        layer = BatchNorm2D(1, momentum=0.0)
        train_inputs = rng.normal(10.0, 2.0, size=(32, 1, 4, 4))
        layer.forward(train_inputs, training=True)
        test_outputs = layer.forward(
            np.full((2, 1, 4, 4), 10.0), training=False
        )
        # A constant input equal to the running mean normalises to ~0.
        np.testing.assert_allclose(test_outputs, 0.0, atol=0.2)

    def test_training_gradients(self, rng):
        model = Sequential([
            BatchNorm2D(3),
            GlobalAvgPool2D(),
            Dense(3, 2, rng=np.random.default_rng(11)),
        ])
        inputs = rng.normal(size=(6, 3, 4, 4))
        check_layer_gradients(model, inputs, np.array([0, 1, 0, 1, 0, 1]))

    def test_inference_backward_rescales(self, rng):
        layer = BatchNorm2D(2)
        inputs = rng.normal(size=(3, 2, 4, 4))
        layer.forward(inputs, training=False)
        grad = layer.backward(np.ones((3, 2, 4, 4)))
        expected_scale = layer.gamma.value / np.sqrt(
            layer.running_var + layer.epsilon
        )
        np.testing.assert_allclose(grad[0, :, 0, 0], expected_scale)

    def test_rejects_invalid_arguments(self):
        with pytest.raises(ValueError):
            BatchNorm2D(0)
        with pytest.raises(ValueError):
            BatchNorm2D(3, momentum=1.5)

    def test_rejects_wrong_channel_count(self, rng):
        layer = BatchNorm2D(3)
        with pytest.raises(ValueError):
            layer.forward(rng.normal(size=(2, 4, 4, 4)))

    def test_backward_before_forward_raises(self):
        with pytest.raises(RuntimeError):
            BatchNorm2D(2).backward(np.zeros((1, 2, 2, 2)))
