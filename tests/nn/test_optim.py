"""Tests for optimizers."""

import numpy as np
import pytest

from repro.nn.base import Parameter
from repro.nn.optim import SGD, Adam


def quadratic_gradient(parameter):
    """Gradient of f(w) = 0.5 * ||w - 3||^2."""
    return parameter.value - 3.0


class TestSGD:
    def test_plain_step(self):
        parameter = Parameter(np.array([1.0]))
        parameter.grad[:] = 2.0
        SGD(learning_rate=0.1).step([parameter])
        np.testing.assert_allclose(parameter.value, [0.8])

    def test_weight_decay_shrinks_weights(self):
        parameter = Parameter(np.array([10.0]))
        parameter.grad[:] = 0.0
        SGD(learning_rate=0.1, weight_decay=0.5).step([parameter])
        assert parameter.value[0] < 10.0

    def test_momentum_accelerates(self):
        plain_param = Parameter(np.array([0.0]))
        momentum_param = Parameter(np.array([0.0]))
        plain = SGD(learning_rate=0.1)
        momentum = SGD(learning_rate=0.1, momentum=0.9)
        for _ in range(5):
            plain_param.grad[:] = -1.0
            momentum_param.grad[:] = -1.0
            plain.step([plain_param])
            momentum.step([momentum_param])
        assert momentum_param.value[0] > plain_param.value[0]

    def test_converges_on_quadratic(self):
        parameter = Parameter(np.array([0.0]))
        optimizer = SGD(learning_rate=0.2, momentum=0.5)
        for _ in range(100):
            parameter.zero_grad()
            parameter.grad += quadratic_gradient(parameter)
            optimizer.step([parameter])
        np.testing.assert_allclose(parameter.value, [3.0], atol=1e-3)

    def test_rejects_invalid_hyperparameters(self):
        with pytest.raises(ValueError):
            SGD(learning_rate=0.0)
        with pytest.raises(ValueError):
            SGD(learning_rate=0.1, momentum=1.0)
        with pytest.raises(ValueError):
            SGD(learning_rate=0.1, weight_decay=-1.0)


class TestAdam:
    def test_converges_on_quadratic(self):
        parameter = Parameter(np.array([0.0, 10.0]))
        optimizer = Adam(learning_rate=0.1)
        for _ in range(600):
            parameter.zero_grad()
            parameter.grad += parameter.value - np.array([3.0, -2.0])
            optimizer.step([parameter])
        np.testing.assert_allclose(parameter.value, [3.0, -2.0], atol=5e-2)

    def test_first_step_size_close_to_learning_rate(self):
        parameter = Parameter(np.array([0.0]))
        parameter.grad[:] = 100.0
        Adam(learning_rate=0.01).step([parameter])
        np.testing.assert_allclose(parameter.value, [-0.01], atol=1e-6)

    def test_state_tracked_per_parameter(self):
        first = Parameter(np.array([0.0]))
        second = Parameter(np.array([0.0]))
        optimizer = Adam(learning_rate=0.1)
        first.grad[:] = 1.0
        second.grad[:] = -1.0
        optimizer.step([first, second])
        assert first.value[0] < 0.0
        assert second.value[0] > 0.0

    def test_rejects_invalid_hyperparameters(self):
        with pytest.raises(ValueError):
            Adam(learning_rate=0.1, beta1=1.0)
        with pytest.raises(ValueError):
            Adam(learning_rate=-0.1)

    def test_zero_grad_helper(self):
        parameter = Parameter(np.array([1.0]))
        parameter.grad[:] = 5.0
        Adam().zero_grad([parameter])
        np.testing.assert_allclose(parameter.grad, 0.0)
