"""Tests for pooling layers."""

import numpy as np
import pytest

from repro.nn.base import Sequential
from repro.nn.dense import Dense, Flatten
from repro.nn.pooling import AvgPool2D, GlobalAvgPool2D, MaxPool2D
from tests.nn.gradient_check import check_layer_gradients


class TestMaxPool:
    def test_output_shape(self, rng):
        layer = MaxPool2D(2)
        assert layer.forward(rng.normal(size=(2, 3, 8, 8))).shape == (2, 3, 4, 4)

    def test_picks_maximum(self):
        inputs = np.zeros((1, 1, 4, 4))
        inputs[0, 0, 0, 1] = 5.0
        inputs[0, 0, 2, 2] = -3.0
        outputs = MaxPool2D(2).forward(inputs)
        assert outputs[0, 0, 0, 0] == 5.0
        assert outputs[0, 0, 1, 1] == 0.0

    def test_channels_independent(self):
        inputs = np.zeros((1, 2, 2, 2))
        inputs[0, 0] = 1.0
        inputs[0, 1] = 7.0
        outputs = MaxPool2D(2).forward(inputs)
        assert outputs[0, 0, 0, 0] == 1.0
        assert outputs[0, 1, 0, 0] == 7.0

    def test_backward_routes_gradient_to_argmax(self):
        inputs = np.array([[[[1.0, 2.0], [3.0, 4.0]]]])
        layer = MaxPool2D(2)
        layer.forward(inputs)
        grad = layer.backward(np.array([[[[10.0]]]]))
        expected = np.zeros((1, 1, 2, 2))
        expected[0, 0, 1, 1] = 10.0
        np.testing.assert_allclose(grad, expected)

    def test_gradients(self, rng):
        model = Sequential([
            MaxPool2D(2),
            Flatten(),
            Dense(2 * 3 * 3, 3, rng=np.random.default_rng(7)),
        ])
        inputs = rng.normal(size=(2, 2, 6, 6))
        check_layer_gradients(model, inputs, np.array([0, 2]))

    def test_invalid_pool_size(self):
        with pytest.raises(ValueError):
            MaxPool2D(0)


class TestAvgPool:
    def test_averages_windows(self):
        inputs = np.array([[[[1.0, 3.0], [5.0, 7.0]]]])
        outputs = AvgPool2D(2).forward(inputs)
        np.testing.assert_allclose(outputs, [[[[4.0]]]])

    def test_backward_spreads_gradient_uniformly(self):
        inputs = np.ones((1, 1, 2, 2))
        layer = AvgPool2D(2)
        layer.forward(inputs)
        grad = layer.backward(np.array([[[[8.0]]]]))
        np.testing.assert_allclose(grad, np.full((1, 1, 2, 2), 2.0))

    def test_gradients(self, rng):
        model = Sequential([
            AvgPool2D(2),
            Flatten(),
            Dense(2 * 2 * 2, 3, rng=np.random.default_rng(8)),
        ])
        inputs = rng.normal(size=(3, 2, 4, 4))
        check_layer_gradients(model, inputs, np.array([0, 1, 2]))


class TestGlobalAvgPool:
    def test_reduces_to_channel_vector(self, rng):
        inputs = rng.normal(size=(4, 5, 7, 7))
        outputs = GlobalAvgPool2D().forward(inputs)
        assert outputs.shape == (4, 5)
        np.testing.assert_allclose(outputs, inputs.mean(axis=(2, 3)))

    def test_backward_shape(self, rng):
        layer = GlobalAvgPool2D()
        inputs = rng.normal(size=(2, 3, 4, 4))
        layer.forward(inputs)
        grad = layer.backward(np.ones((2, 3)))
        assert grad.shape == inputs.shape
        np.testing.assert_allclose(grad, 1.0 / 16.0)

    def test_rejects_non_nchw(self):
        with pytest.raises(ValueError):
            GlobalAvgPool2D().forward(np.zeros((3, 4)))

    def test_gradients(self, rng):
        model = Sequential([
            GlobalAvgPool2D(),
            Dense(3, 2, rng=np.random.default_rng(9)),
        ])
        inputs = rng.normal(size=(3, 3, 5, 5))
        check_layer_gradients(model, inputs, np.array([0, 1, 0]))
