"""Per-shape scratch caches on conv/pooling layers.

Regression tests for a buffer-churn bug: the layers used to keep a
*single* scratch slot keyed by nothing, so the full-tile / remainder-
tile alternation of every predict and fit loop reallocated the im2col
scratch twice per call.  The caches are now keyed per ``(shape,
dtype)`` with a small eviction bound, so repeated same-shape calls
must reuse the same buffer object and the cache must never grow past
its bound.
"""

from __future__ import annotations

import numpy as np

from repro.nn.conv import _SCRATCH_SLOTS, Conv2D
from repro.nn.pooling import MaxPool2D


def _conv():
    return Conv2D(2, 3, 3, padding=1, rng=np.random.default_rng(0))


class TestConvScratchCache:
    def test_same_shape_reuses_buffer(self):
        conv = _conv()
        inputs = np.random.default_rng(1).standard_normal((4, 2, 8, 8))
        conv.forward(inputs, training=False)
        buffer = next(iter(conv._patch_scratch.values()))
        for _ in range(5):
            conv.forward(inputs, training=False)
            assert next(iter(conv._patch_scratch.values())) is buffer
        assert len(conv._patch_scratch) == 1

    def test_tile_alternation_keeps_both_buffers(self):
        conv = _conv()
        rng = np.random.default_rng(1)
        full = rng.standard_normal((4, 2, 8, 8))
        remainder = rng.standard_normal((1, 2, 8, 8))
        for _ in range(2):
            conv.forward(full, training=False)
            conv.forward(remainder, training=False)
        buffers = {
            key: id(value) for key, value in conv._patch_scratch.items()
        }
        assert len(buffers) == 2
        # Another alternation round must not replace either buffer.
        conv.forward(full, training=False)
        conv.forward(remainder, training=False)
        assert {
            key: id(value) for key, value in conv._patch_scratch.items()
        } == buffers

    def test_cache_is_bounded(self):
        conv = _conv()
        rng = np.random.default_rng(1)
        for batch in range(1, _SCRATCH_SLOTS + 3):
            conv.forward(
                rng.standard_normal((batch, 2, 8, 8)), training=False
            )
        assert len(conv._patch_scratch) == _SCRATCH_SLOTS

    def test_grad_scratch_reused_across_backward_calls(self):
        conv = _conv()
        rng = np.random.default_rng(1)
        inputs = rng.standard_normal((2, 2, 8, 8))
        grad = rng.standard_normal((2, 3, 8, 8))
        conv.forward(inputs, training=True)
        conv.backward(grad)
        buffer = next(iter(conv._grad_patch_scratch.values()))
        for _ in range(3):
            conv.forward(inputs, training=True)
            conv.backward(grad)
            assert next(iter(conv._grad_patch_scratch.values())) is buffer
        assert len(conv._grad_patch_scratch) == 1

    def test_dtype_keys_are_distinct(self):
        conv32 = Conv2D(
            2, 3, 3, padding=1, rng=np.random.default_rng(0), dtype="float32"
        )
        inputs = np.random.default_rng(1).standard_normal((2, 2, 8, 8))
        conv32.forward(inputs.astype(np.float32), training=False)
        (key,) = conv32._patch_scratch
        assert key[1] == np.dtype(np.float32).str


class TestPoolScratchCache:
    def test_generic_pool_reuses_buffer(self):
        pool = MaxPool2D(pool_size=3, stride=3)
        inputs = np.random.default_rng(1).standard_normal((2, 3, 9, 9))
        pool.forward(inputs, training=False)
        buffer = next(iter(pool._patch_scratch.values()))
        for _ in range(4):
            pool.forward(inputs, training=False)
            assert next(iter(pool._patch_scratch.values())) is buffer
        assert len(pool._patch_scratch) == 1

    def test_pool_cache_is_bounded(self):
        pool = MaxPool2D(pool_size=3, stride=3)
        rng = np.random.default_rng(1)
        for batch in range(1, _SCRATCH_SLOTS + 3):
            pool.forward(rng.standard_normal((batch, 3, 9, 9)), training=False)
        assert len(pool._patch_scratch) == _SCRATCH_SLOTS

    def test_outputs_unchanged_by_reuse(self):
        pool = MaxPool2D(pool_size=3, stride=3)
        inputs = np.random.default_rng(1).standard_normal((2, 3, 9, 9))
        first = pool.forward(inputs, training=False).copy()
        for _ in range(3):
            again = pool.forward(inputs, training=False)
        np.testing.assert_array_equal(first, again)
