"""Tests for the training loop."""

import numpy as np
import pytest

from repro.nn.base import Sequential
from repro.nn.dense import Dense, Flatten
from repro.nn.layers import Conv2D, MaxPool2D, ReLU
from repro.nn.optim import SGD, Adam
from repro.nn.trainer import Trainer, top_k_accuracy


def _toy_problem(rng=None, count=120, size=8):
    """A linearly separable two-class image problem.

    Uses its own seeded generator by default so the learning-behaviour
    assertions do not depend on test execution order.
    """
    rng = rng if rng is not None else np.random.default_rng(2024)
    images = rng.normal(size=(count, 1, size, size))
    labels = (
        images[:, 0, : size // 2].mean(axis=(1, 2))
        > images[:, 0, size // 2:].mean(axis=(1, 2))
    ).astype(int)
    return images, labels


def _small_model(seed=0):
    rng = np.random.default_rng(seed)
    return Sequential([
        Conv2D(1, 4, 3, padding=1, rng=rng),
        ReLU(),
        MaxPool2D(2),
        Flatten(),
        Dense(4 * 4 * 4, 2, rng=rng),
    ])


class TestTrainer:
    def test_learns_toy_problem(self):
        images, labels = _toy_problem()
        trainer = Trainer(_small_model(), optimizer=Adam(0.01), seed=0)
        history = trainer.fit(images, labels, epochs=10)
        assert trainer.evaluate(images, labels) > 0.9
        assert history.train_loss[-1] < history.train_loss[0]

    def test_history_lengths(self):
        images, labels = _toy_problem(count=40)
        trainer = Trainer(_small_model(), optimizer=SGD(0.01), seed=0)
        history = trainer.fit(
            images, labels, epochs=3, validation_data=(images, labels)
        )
        assert history.epochs == 3
        assert len(history.train_accuracy) == 3
        assert len(history.validation_accuracy) == 3
        assert history.final_validation_accuracy() == history.validation_accuracy[-1]

    def test_no_validation_history_when_not_requested(self):
        images, labels = _toy_problem(count=40)
        trainer = Trainer(_small_model(), optimizer=SGD(0.01), seed=0)
        history = trainer.fit(images, labels, epochs=2)
        assert history.validation_accuracy == []
        assert np.isnan(history.final_validation_accuracy())

    def test_reproducible_given_seeds(self):
        images, labels = _toy_problem(count=60)
        results = []
        for _ in range(2):
            trainer = Trainer(_small_model(seed=1), optimizer=SGD(0.05), seed=4)
            trainer.fit(images, labels, epochs=2)
            results.append(trainer.evaluate(images, labels))
        assert results[0] == results[1]

    def test_rejects_mismatched_labels(self, rng):
        trainer = Trainer(_small_model(), seed=0)
        with pytest.raises(ValueError):
            trainer.fit(rng.normal(size=(10, 1, 8, 8)), np.zeros(9, dtype=int))

    def test_rejects_non_nchw_images(self, rng):
        trainer = Trainer(_small_model(), seed=0)
        with pytest.raises(ValueError):
            trainer.fit(rng.normal(size=(10, 8, 8)), np.zeros(10, dtype=int))

    def test_invalid_batch_size(self):
        with pytest.raises(ValueError):
            Trainer(_small_model(), batch_size=0)


class TestTopKAccuracy:
    def test_top1_equals_argmax_accuracy(self, rng):
        probabilities = rng.random((20, 5))
        labels = rng.integers(0, 5, 20)
        expected = float((np.argmax(probabilities, axis=1) == labels).mean())
        assert top_k_accuracy(probabilities, labels, k=1) == expected

    def test_top_k_increases_with_k(self, rng):
        probabilities = rng.random((50, 10))
        labels = rng.integers(0, 10, 50)
        top1 = top_k_accuracy(probabilities, labels, k=1)
        top5 = top_k_accuracy(probabilities, labels, k=5)
        assert top5 >= top1

    def test_k_larger_than_classes_gives_perfect(self, rng):
        probabilities = rng.random((10, 3))
        labels = rng.integers(0, 3, 10)
        assert top_k_accuracy(probabilities, labels, k=10) == 1.0

    def test_rejects_non_positive_k(self, rng):
        with pytest.raises(ValueError):
            top_k_accuracy(rng.random((5, 3)), np.zeros(5, dtype=int), k=0)
