"""Tests for the Fig. 9 power breakdown."""

import pytest

from repro.power.breakdown import offloading_power_breakdown


class TestOffloadingPowerBreakdown:
    def test_reference_method_normalises_to_one(self):
        breakdowns = offloading_power_breakdown(
            {"Original": 1000.0, "DeepN-JPEG": 300.0}
        )
        assert breakdowns[0].method == "Original"
        assert breakdowns[0].normalized_total == pytest.approx(1.0)

    def test_smaller_size_gives_lower_power(self):
        breakdowns = offloading_power_breakdown(
            {"Original": 1000.0, "DeepN-JPEG": 300.0},
            include_computation=False,
        )
        assert breakdowns[1].normalized_total == pytest.approx(0.3)

    def test_communication_only_normalisation_matches_byte_ratio(self):
        sizes = {"Original": 800.0, "RM-HF3": 700.0, "SAME-Q4": 500.0,
                 "DeepN-JPEG": 200.0}
        breakdowns = offloading_power_breakdown(sizes, include_computation=False)
        for breakdown in breakdowns:
            assert breakdown.normalized_total == pytest.approx(
                sizes[breakdown.method] / sizes["Original"]
            )

    def test_including_computation_compresses_the_gap(self):
        sizes = {"Original": 150 * 1024, "DeepN-JPEG": 50 * 1024}
        with_compute = offloading_power_breakdown(sizes, include_computation=True)
        without_compute = offloading_power_breakdown(
            sizes, include_computation=False
        )
        assert (
            with_compute[1].normalized_total
            > without_compute[1].normalized_total
        )

    def test_explicit_reference_method(self):
        breakdowns = offloading_power_breakdown(
            {"A": 100.0, "B": 50.0}, reference_method="B",
            include_computation=False,
        )
        assert breakdowns[0].normalized_total == pytest.approx(2.0)

    def test_link_choice_changes_absolute_not_relative(self):
        sizes = {"Original": 1000.0, "DeepN-JPEG": 250.0}
        wifi = offloading_power_breakdown(sizes, link_name="WiFi",
                                          include_computation=False)
        cellular = offloading_power_breakdown(sizes, link_name="3G",
                                              include_computation=False)
        assert cellular[1].communication_joules > wifi[1].communication_joules
        assert cellular[1].normalized_total == pytest.approx(
            wifi[1].normalized_total
        )

    def test_total_joules_property(self):
        breakdown = offloading_power_breakdown({"Original": 100.0})[0]
        assert breakdown.total_joules == pytest.approx(
            breakdown.communication_joules + breakdown.computation_joules
        )

    def test_validation(self):
        with pytest.raises(ValueError):
            offloading_power_breakdown({})
        with pytest.raises(ValueError):
            offloading_power_breakdown({"A": 0.0})
        with pytest.raises(ValueError):
            offloading_power_breakdown({"A": 1.0}, link_name="5G")
        with pytest.raises(ValueError):
            offloading_power_breakdown({"A": 1.0}, workload_name="LeNet")
        with pytest.raises(ValueError):
            offloading_power_breakdown({"A": 1.0}, reference_method="B")
