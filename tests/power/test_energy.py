"""Tests for the wireless link and DNN energy models."""

import pytest

from repro.power.energy import (
    DNN_WORKLOADS,
    REFERENCE_IMAGE_BYTES,
    WIRELESS_LINKS,
    DnnWorkload,
    EnergyModel,
    WirelessLink,
)


class TestWirelessLink:
    def test_reference_upload_times_match_paper(self):
        # The paper quotes 870 ms (3G), 180 ms (LTE) and 95 ms (Wi-Fi) for a
        # 152 KB image.
        assert WIRELESS_LINKS["3G"].transfer_seconds(REFERENCE_IMAGE_BYTES) == (
            pytest.approx(0.870)
        )
        assert WIRELESS_LINKS["LTE"].transfer_seconds(REFERENCE_IMAGE_BYTES) == (
            pytest.approx(0.180)
        )
        assert WIRELESS_LINKS["WiFi"].transfer_seconds(REFERENCE_IMAGE_BYTES) == (
            pytest.approx(0.095)
        )

    def test_energy_proportional_to_bytes(self):
        link = WIRELESS_LINKS["LTE"]
        assert link.transfer_energy_joules(2000) == pytest.approx(
            2 * link.transfer_energy_joules(1000)
        )

    def test_slower_link_costs_more_energy(self):
        assert (
            WIRELESS_LINKS["3G"].joules_per_byte
            > WIRELESS_LINKS["WiFi"].joules_per_byte
        )

    def test_validation(self):
        with pytest.raises(ValueError):
            WirelessLink("x", upload_seconds_per_reference=0, transmit_power_watts=1)
        with pytest.raises(ValueError):
            WIRELESS_LINKS["3G"].transfer_seconds(-1)


class TestDnnWorkload:
    def test_paper_mac_counts(self):
        assert DNN_WORKLOADS["AlexNet"].mac_count == pytest.approx(724e6)
        assert DNN_WORKLOADS["GoogLeNet"].mac_count == pytest.approx(1.43e9)

    def test_compute_energy_scales_with_macs(self):
        assert (
            DNN_WORKLOADS["GoogLeNet"].compute_energy_joules()
            > DNN_WORKLOADS["AlexNet"].compute_energy_joules()
        )

    def test_validation(self):
        with pytest.raises(ValueError):
            DnnWorkload("x", 0)
        with pytest.raises(ValueError):
            DNN_WORKLOADS["AlexNet"].compute_energy_joules(0)


class TestEnergyModel:
    def test_total_is_sum(self):
        model = EnergyModel(WIRELESS_LINKS["WiFi"], DNN_WORKLOADS["AlexNet"])
        assert model.total_energy(1000) == pytest.approx(
            model.communication_energy(1000) + model.computation_energy()
        )

    def test_communication_dominates_for_paper_scale_images(self):
        """The regime the paper argues about: for a ~150 KB image the upload
        energy exceeds the inference energy even over Wi-Fi."""
        model = EnergyModel(WIRELESS_LINKS["WiFi"], DNN_WORKLOADS["AlexNet"])
        assert model.communication_energy(REFERENCE_IMAGE_BYTES) > (
            model.computation_energy()
        )

    def test_validation(self):
        with pytest.raises(ValueError):
            EnergyModel(
                WIRELESS_LINKS["WiFi"], DNN_WORKLOADS["AlexNet"], joules_per_mac=0
            )
