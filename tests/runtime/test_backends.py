"""The pluggable executor backends (repro.runtime.backends).

Socket-tier behaviour that needs live worker daemons lives in the chaos
suite (``tests/chaos/test_chaos_socket.py``); this module covers the
backend surface itself: name resolution, the registry, plain/supervised
parity across serial/forked/persistent, persistent-pool reuse, and the
coordinator's zero-worker degradation.
"""

import pytest

from repro.runtime import backends, faults
from repro.runtime.backends import (
    BACKEND_NAMES,
    BackendEvent,
    ForkedBackend,
    SerialBackend,
    SocketBackend,
    get_backend,
    resolve_backend_name,
    shutdown_backends,
    validate_backend_name,
)
from repro.runtime.executor import fork_available, imap_tasks, map_tasks
from repro.runtime.supervision import supervised_map

needs_fork = pytest.mark.skipif(
    not fork_available(), reason="fork start method required"
)


def _square(value):
    return value * value


def _boom(value):
    raise ValueError(f"boom {value}")


@pytest.fixture(autouse=True)
def _clean_backends(monkeypatch):
    monkeypatch.delenv(backends.ENV_VAR, raising=False)
    monkeypatch.delenv(faults.ENV_VAR, raising=False)
    faults.clear_faults()
    yield
    faults.clear_faults()
    shutdown_backends()


class TestNameResolution:
    @pytest.mark.parametrize("name", [None, "", "auto", "AUTO", " auto "])
    def test_auto_spellings_normalise_to_none(self, name):
        assert validate_backend_name(name) is None

    @pytest.mark.parametrize("name", BACKEND_NAMES)
    def test_known_names_pass_through(self, name):
        assert validate_backend_name(name) == name
        assert validate_backend_name(name.upper()) == name

    def test_unknown_name_rejected(self):
        with pytest.raises(ValueError, match="unknown backend"):
            validate_backend_name("threads")

    def test_explicit_argument_beats_env(self, monkeypatch):
        monkeypatch.setenv(backends.ENV_VAR, "persistent")
        assert resolve_backend_name("serial") == "serial"

    def test_env_var_applies_when_no_argument(self, monkeypatch):
        monkeypatch.setenv(backends.ENV_VAR, "serial")
        assert resolve_backend_name(None) == "serial"

    def test_default_is_auto(self):
        assert resolve_backend_name(None) is None

    def test_bad_env_var_raises(self, monkeypatch):
        monkeypatch.setenv(backends.ENV_VAR, "bogus")
        with pytest.raises(ValueError, match="unknown backend"):
            resolve_backend_name(None)


class TestRegistry:
    def test_serial_and_forked_are_fresh_instances(self):
        assert get_backend("serial") is not get_backend("serial")
        assert get_backend("forked") is not get_backend("forked")
        assert isinstance(get_backend("serial"), SerialBackend)
        assert isinstance(get_backend("forked"), ForkedBackend)

    def test_persistent_and_socket_are_singletons(self, monkeypatch):
        monkeypatch.setenv(backends.SOCKET_BIND_ENV, "127.0.0.1:0")
        assert get_backend("persistent") is get_backend("persistent")
        assert get_backend("socket") is get_backend("socket")

    def test_shutdown_releases_singletons(self):
        first = get_backend("persistent")
        shutdown_backends()
        assert get_backend("persistent") is not first


class TestSerialBackend:
    def test_plain_map_matches_builtin(self):
        backend = SerialBackend()
        seen = []
        out = backend.map_ordered(
            _square, range(5), on_result=lambda i, v: seen.append((i, v))
        )
        assert out == [v * v for v in range(5)]
        assert seen == [(i, i * i) for i in range(5)]
        assert list(backend.imap_ordered(_square, range(5))) == out

    def test_supervised_cycle_emits_events_inline(self):
        backend = SerialBackend()
        backend.open(_square, [2, 3], workers=1)
        backend.submit(0, 1)
        backend.submit(1, 1)
        events = backend.poll(0.0)
        assert [(e.index, e.kind, e.value) for e in events] == [
            (0, "ok", 4), (1, "ok", 9),
        ]
        assert backend.poll(0.0) == []  # drained
        assert backend.running() == {}  # no process to watch -> no timeouts
        assert backend.workers_alive() == 1
        backend.close()

    def test_supervised_failure_event_carries_envelope(self):
        backend = SerialBackend()
        backend.open(_boom, ["x"], workers=1)
        backend.submit(0, 1)
        (event,) = backend.poll(0.0)
        assert event.kind == "failure"
        assert event.failure.error_type == "ValueError"
        assert "boom" in event.failure.message


@needs_fork
class TestForkedParity:
    def test_plain_map_matches_serial(self):
        forked = ForkedBackend().map_ordered(_square, range(12), workers=2)
        assert forked == [v * v for v in range(12)]

    def test_imap_matches_serial(self):
        out = list(
            ForkedBackend().imap_ordered(_square, range(12), workers=2)
        )
        assert out == [v * v for v in range(12)]

    def test_single_worker_falls_back_to_serial_path(self):
        assert ForkedBackend().map_ordered(_square, range(4), workers=1) == [
            0, 1, 4, 9,
        ]


@needs_fork
class TestPersistentBackend:
    def test_pool_survives_across_maps(self):
        backend = get_backend("persistent")
        assert backend.map_ordered(_square, range(8), workers=2) == [
            v * v for v in range(8)
        ]
        pool = backend._pool
        assert pool is not None
        assert backend.map_ordered(_square, range(8), workers=2) == [
            v * v for v in range(8)
        ]
        assert backend._pool is pool  # the warm pool was reused

    def test_pool_grows_for_a_larger_map(self):
        backend = get_backend("persistent")
        backend.map_ordered(_square, range(8), workers=2)
        first = backend._pool
        backend.map_ordered(_square, range(8), workers=3)
        assert backend._pool is not first
        assert backend._pool._max_workers >= 3

    def test_supervised_map_reuses_the_plain_pool(self):
        backend = get_backend("persistent")
        backend.map_ordered(_square, range(8), workers=2)
        pool = backend._pool
        out = supervised_map(
            _square, list(range(8)), workers=2, policy="retry", retries=1,
            backend="persistent",
        )
        assert out == [v * v for v in range(8)]
        assert get_backend("persistent")._pool is pool

    def test_shutdown_then_reuse_builds_a_fresh_pool(self):
        backend = get_backend("persistent")
        backend.map_ordered(_square, range(8), workers=2)
        shutdown_backends()
        assert get_backend("persistent").map_ordered(
            _square, range(8), workers=2
        ) == [v * v for v in range(8)]


class TestExecutorRouting:
    def test_map_tasks_backend_argument(self):
        assert map_tasks(_square, range(6), workers=2, backend="serial") == [
            v * v for v in range(6)
        ]

    def test_imap_tasks_backend_argument(self):
        assert list(
            imap_tasks(_square, range(6), workers=2, backend="serial")
        ) == [v * v for v in range(6)]

    def test_env_var_routes_plain_maps(self, monkeypatch):
        monkeypatch.setenv(backends.ENV_VAR, "serial")
        assert map_tasks(_square, range(6), workers=2) == [
            v * v for v in range(6)
        ]

    def test_bad_env_var_surfaces(self, monkeypatch):
        monkeypatch.setenv(backends.ENV_VAR, "bogus")
        with pytest.raises(ValueError, match="unknown backend"):
            map_tasks(_square, range(6), workers=2)

    @needs_fork
    def test_supervised_results_identical_across_backends(self):
        reference = supervised_map(
            _square, list(range(10)), workers=2, policy="retry", retries=1,
            backend="serial",
        )
        for name in ("forked", "persistent"):
            assert supervised_map(
                _square, list(range(10)), workers=2, policy="retry",
                retries=1, backend=name,
            ) == reference


class TestSocketDegradation:
    def test_zero_workers_degrades_to_local_backend(self, monkeypatch, caplog):
        monkeypatch.setenv(backends.SOCKET_BIND_ENV, "127.0.0.1:0")
        monkeypatch.setenv(backends.SOCKET_CONNECT_DEADLINE_ENV, "0.3")
        with caplog.at_level("WARNING", logger="repro.runtime.backends"):
            out = supervised_map(
                _square, list(range(6)), workers=2, policy="retry",
                retries=1, backend="socket",
            )
        assert out == [v * v for v in range(6)]
        assert any("degrad" in record.message for record in caplog.records)

    def test_degraded_plain_map_unwraps_errors(self, monkeypatch):
        monkeypatch.setenv(backends.SOCKET_BIND_ENV, "127.0.0.1:0")
        monkeypatch.setenv(backends.SOCKET_CONNECT_DEADLINE_ENV, "0.3")
        backend = get_backend("socket")
        with pytest.raises(ValueError, match="boom"):
            backend.map_ordered(_boom, ["x"], workers=1)

    def test_ephemeral_bind_exposes_bound_address(self, monkeypatch):
        monkeypatch.setenv(backends.SOCKET_BIND_ENV, "127.0.0.1:0")
        backend = SocketBackend()
        backend._ensure_server()
        try:
            host, port = backend.address
            assert host == "127.0.0.1" and port > 0
        finally:
            backend.shutdown()


class TestBackendEvent:
    def test_defaults(self):
        event = BackendEvent(3, 2, "ok", value=9)
        assert (event.index, event.attempt, event.kind) == (3, 2, "ok")
        assert event.failure is None
