"""Tests for the process-pool execution layer."""

import numpy as np
import pytest

from repro.runtime.executor import (
    TaskState,
    available_workers,
    chunk_bounds,
    default_chunksize,
    effective_workers,
    fork_available,
    imap_tasks,
    map_tasks,
    spawn_seeds,
)


def _square(value):
    return value * value


def _raise_on_three(value):
    if value == 3:
        raise ValueError("task three is poisoned")
    return value


def _draw(seed_sequence):
    return float(np.random.default_rng(seed_sequence).uniform())


class TestEffectiveWorkers:
    def test_default_is_serial(self):
        assert effective_workers(1) == 1

    def test_zero_and_none_mean_all_cpus(self):
        assert effective_workers(0) == available_workers()
        assert effective_workers(None) == available_workers()

    def test_negative_rejected(self):
        with pytest.raises(ValueError):
            effective_workers(-2)

    def test_capped_by_task_count(self):
        assert effective_workers(8, task_count=3) == 3

    def test_at_least_one(self):
        assert effective_workers(4, task_count=0) == 1


class TestChunkBounds:
    def test_empty_input_yields_no_chunks(self):
        assert chunk_bounds(0, 4) == []

    def test_chunk_larger_than_total(self):
        assert chunk_bounds(3, 10) == [(0, 3)]

    def test_odd_final_chunk(self):
        assert chunk_bounds(10, 4) == [(0, 4), (4, 8), (8, 10)]

    def test_exact_division(self):
        assert chunk_bounds(8, 4) == [(0, 4), (4, 8)]

    def test_concatenation_reproduces_range(self):
        for total in (0, 1, 5, 17):
            for chunk in (1, 2, 7, 100):
                covered = [
                    index
                    for start, stop in chunk_bounds(total, chunk)
                    for index in range(start, stop)
                ]
                assert covered == list(range(total))

    def test_invalid_arguments(self):
        with pytest.raises(ValueError):
            chunk_bounds(-1, 4)
        with pytest.raises(ValueError):
            chunk_bounds(4, 0)


class TestDefaultChunksize:
    def test_degenerate_inputs(self):
        assert default_chunksize(0, 4) == 1
        assert default_chunksize(10, 0) == 1

    def test_spreads_over_workers(self):
        # 4 dispatches per worker: 32 tasks over 4 workers -> chunks of 2.
        assert default_chunksize(32, 4) == 2
        assert default_chunksize(3, 8) == 1


class TestMapTasks:
    def test_serial_runs_in_order(self):
        assert map_tasks(_square, range(6), workers=1) == [
            0, 1, 4, 9, 16, 25,
        ]

    def test_parallel_matches_serial(self):
        tasks = list(range(23))
        serial = map_tasks(_square, tasks, workers=1)
        parallel = map_tasks(_square, tasks, workers=4)
        assert parallel == serial

    def test_parallel_preserves_order_with_uneven_chunks(self):
        tasks = list(range(11))
        assert map_tasks(_square, tasks, workers=3, chunksize=2) == [
            value * value for value in tasks
        ]

    def test_single_task_stays_serial(self):
        assert map_tasks(_square, [7], workers=8) == [49]

    def test_exception_propagates_serial(self):
        with pytest.raises(ValueError, match="poisoned"):
            map_tasks(_raise_on_three, range(5), workers=1)

    def test_pool_survives_worker_task_raising(self):
        """A poisoned task fails the call, not the runtime."""
        with pytest.raises(ValueError, match="poisoned"):
            map_tasks(_raise_on_three, range(5), workers=2)
        # The next pool works: one bad sweep never wedges the runtime.
        assert map_tasks(_square, range(5), workers=2) == [0, 1, 4, 9, 16]

    def test_on_result_fires_in_order_serial(self):
        seen = []
        map_tasks(
            _square, range(4), workers=1,
            on_result=lambda index, value: seen.append((index, value)),
        )
        assert seen == [(0, 0), (1, 1), (2, 4), (3, 9)]

    def test_on_result_fires_in_order_parallel(self):
        seen = []
        map_tasks(
            _square, range(9), workers=3,
            on_result=lambda index, value: seen.append((index, value)),
        )
        assert seen == [(index, index * index) for index in range(9)]


class TestImapTasks:
    def test_serial_yields_in_order(self):
        assert list(imap_tasks(_square, range(5), workers=1)) == [
            0, 1, 4, 9, 16,
        ]

    def test_parallel_matches_serial(self):
        tasks = list(range(17))
        serial = list(imap_tasks(_square, tasks, workers=1))
        parallel = list(imap_tasks(_square, tasks, workers=3, window=2))
        assert parallel == serial

    def test_is_lazy(self):
        """Nothing runs until the generator is consumed."""
        calls = []

        def record(value):
            calls.append(value)
            return value

        iterator = imap_tasks(record, range(3), workers=1)
        assert calls == []
        assert next(iterator) == 0
        assert calls == [0]

    def test_exception_propagates(self):
        with pytest.raises(ValueError, match="poisoned"):
            list(imap_tasks(_raise_on_three, range(5), workers=2))


class TestSpawnSeeds:
    def test_deterministic(self):
        first = [_draw(seq) for seq in spawn_seeds(42, 5)]
        second = [_draw(seq) for seq in spawn_seeds(42, 5)]
        assert first == second

    def test_streams_are_distinct(self):
        draws = [_draw(seq) for seq in spawn_seeds(42, 8)]
        assert len(set(draws)) == len(draws)

    def test_independent_of_worker_count(self):
        seeds = spawn_seeds(7, 6)
        serial = map_tasks(_draw, seeds, workers=1)
        parallel = map_tasks(_draw, spawn_seeds(7, 6), workers=3)
        assert serial == parallel

    def test_count_validated(self):
        with pytest.raises(ValueError):
            spawn_seeds(0, -1)
        assert spawn_seeds(0, 0) == []


class TestTaskState:
    def test_builds_once_per_key(self):
        calls = []

        def build(key):
            calls.append(key)
            return {"key": key}

        state = TaskState(build)
        assert state.get("a") is state.get("a")
        assert calls == ["a"]
        state.get("b")
        assert calls == ["a", "b"]

    def test_seed_preempts_build(self):
        state = TaskState(lambda key: pytest.fail("build should not run"))
        state.seed("k", {"ready": True})
        assert state.get("k") == {"ready": True}

    def test_clear_forces_rebuild(self):
        counter = []
        state = TaskState(lambda key: counter.append(key) or len(counter))
        assert state.get("x") == 1
        state.clear()
        assert state.get("x") == 2

    def test_none_state_is_memoised(self):
        # Regression: a build that legitimately returns None must be
        # cached like any other value, not rebuilt on every get.
        calls = []
        state = TaskState(lambda key: calls.append(key))
        assert state.get("k") is None
        assert state.get("k") is None
        assert calls == ["k"]

    def test_none_seed_is_memoised(self):
        state = TaskState(lambda key: pytest.fail("build should not run"))
        state.seed("k", None)
        assert state.get("k") is None

    def test_none_key_is_a_valid_key(self):
        calls = []
        state = TaskState(lambda key: calls.append(key) or "built")
        assert state.get(None) == "built"
        assert state.get(None) == "built"
        assert calls == [None]


@pytest.mark.skipif(not fork_available(), reason="fork start method required")
def test_parallel_really_uses_processes():
    """With fork available and workers > 1, tasks run in child processes."""
    import os

    parent = os.getpid()
    pids = map_tasks(_child_pid, range(4), workers=2, chunksize=1)
    assert any(pid != parent for pid in pids)


def _child_pid(_):
    import os

    return os.getpid()
