"""The deterministic fault-injection harness (repro.runtime.faults)."""

import json
import os

import pytest

from repro.runtime import faults
from repro.runtime.faults import (
    DEFAULT_HANG_SECONDS,
    ENV_VAR,
    FaultSpec,
    FaultSpecError,
    InjectedFault,
    clear_faults,
    injected,
    install_faults,
    parse_faults,
    truncate_artifact,
    truncate_store_artifacts,
)


@pytest.fixture(autouse=True)
def _no_leaked_faults(monkeypatch):
    """Every test starts (and must end) with no faults in force."""
    monkeypatch.delenv(ENV_VAR, raising=False)
    clear_faults()
    yield
    clear_faults()


class TestSpecGrammar:
    def test_single_entry_defaults(self):
        (spec,) = parse_faults("raise:3")
        assert spec == FaultSpec("raise", 3, attempt=1)
        assert spec.seconds == DEFAULT_HANG_SECONDS

    def test_full_entry(self):
        (spec,) = parse_faults("hang:2:1:0.25")
        assert spec == FaultSpec("hang", 2, attempt=1, seconds=0.25)

    def test_multiple_entries_and_whitespace(self):
        specs = parse_faults(" raise:1 , exit:5:2 ,")
        assert specs == (
            FaultSpec("raise", 1),
            FaultSpec("exit", 5, attempt=2),
        )

    def test_attempt_zero_means_every_attempt(self):
        (spec,) = parse_faults("raise:3:0")
        assert spec.matches(3, 1) and spec.matches(3, 7)
        assert not spec.matches(4, 1)

    def test_attempt_pinned(self):
        (spec,) = parse_faults("raise:3:2")
        assert spec.matches(3, 2)
        assert not spec.matches(3, 1)

    @pytest.mark.parametrize("bad", [
        "boom:1",          # unknown kind
        "raise",           # missing index
        "raise:x",         # non-numeric index
        "raise:1:y",       # non-numeric attempt
        "raise:1:1:z",     # non-numeric seconds
        "raise:-1",        # negative index
        "raise:1:-2",      # negative attempt
        "hang:1:1:0",      # non-positive hang
        "raise:1:1:1:1",   # too many fields
    ])
    def test_malformed_entries_rejected(self, bad):
        with pytest.raises(FaultSpecError):
            parse_faults(bad)


class TestInstallation:
    def test_install_accepts_string_and_specs(self):
        installed = install_faults("raise:1")
        assert installed == (FaultSpec("raise", 1),)
        installed = install_faults([FaultSpec("exit", 2)])
        assert faults.active_faults() == (FaultSpec("exit", 2),)
        assert installed == faults.active_faults()

    def test_env_faults_apply_when_nothing_installed(self, monkeypatch):
        monkeypatch.setenv(ENV_VAR, "raise:7:0")
        assert faults.active_faults() == (FaultSpec("raise", 7, attempt=0),)

    def test_installed_faults_shadow_env(self, monkeypatch):
        monkeypatch.setenv(ENV_VAR, "raise:7")
        install_faults("exit:1")
        assert faults.active_faults() == (FaultSpec("exit", 1),)
        clear_faults()
        assert faults.active_faults() == (FaultSpec("raise", 7),)

    def test_injected_context_restores(self):
        with injected("raise:2"):
            assert faults.active_faults() == (FaultSpec("raise", 2),)
        assert faults.active_faults() == ()

    def test_fire_raises_only_on_match(self):
        install_faults("raise:2:1")
        faults.fire(1, 1)  # no match, no-op
        faults.fire(2, 2)  # wrong attempt, no-op
        with pytest.raises(InjectedFault):
            faults.fire(2, 1)

    def test_no_faults_is_a_noop(self):
        faults.fire(0, 1)


class TestStoreCorruption:
    def test_truncate_artifact_invalidates_json(self, tmp_path):
        path = tmp_path / "artifact.json"
        path.write_text(json.dumps({"value": list(range(100))}))
        truncate_artifact(str(path))
        assert path.stat().st_size == 16
        with pytest.raises(json.JSONDecodeError):
            json.loads(path.read_text())

    def test_truncate_store_artifacts_is_deterministic(self, tmp_path):
        for name in ("bb/b1.json", "aa/a1.json", "aa/a2.json"):
            path = tmp_path / name
            path.parent.mkdir(exist_ok=True)
            path.write_text(json.dumps({"value": "x" * 64}))
        first = truncate_store_artifacts(str(tmp_path), count=2)
        assert [os.path.basename(p) for p in first] == ["a1.json", "a2.json"]
        untouched = tmp_path / "bb" / "b1.json"
        assert json.loads(untouched.read_text())  # still valid

    def test_truncate_zero_count_touches_nothing(self, tmp_path):
        path = tmp_path / "a.json"
        path.write_text(json.dumps({"value": 1}))
        assert truncate_store_artifacts(str(tmp_path), count=0) == []
        assert json.loads(path.read_text()) == {"value": 1}


class TestNetworkKinds:
    def test_network_kinds_parse(self):
        specs = faults.parse_faults(
            "disconnect:4,delay:2:1:3,dup-result:1,hb-loss:3:1:20"
        )
        assert [spec.kind for spec in specs] == [
            "disconnect", "delay", "dup-result", "hb-loss",
        ]
        assert all(spec.is_network() for spec in specs)
        assert not FaultSpec("raise", 1).is_network()

    def test_fire_ignores_network_kinds(self):
        # Transport faults need the worker daemon's connection context;
        # the compute envelope must treat them as no-ops everywhere.
        install_faults("disconnect:0:0,hb-loss:0:0:5,dup-result:0:0")
        faults.fire(0, 1)  # would raise/hang/exit if wrongly applied

    def test_network_faults_filter_by_index_attempt_and_kind(self):
        install_faults("disconnect:2:1,raise:2:1,hb-loss:3:0:9")
        assert [s.kind for s in faults.network_faults(2, 1)] == ["disconnect"]
        assert faults.network_faults(2, 2) == ()
        assert [s.kind for s in faults.network_faults(3, 5)] == ["hb-loss"]


class TestEagerValidation:
    def test_no_faults_validates_to_empty(self):
        assert faults.validate_active_faults() == ()

    def test_valid_env_spec_returned(self, monkeypatch):
        monkeypatch.setenv(ENV_VAR, "raise:2:1,disconnect:4")
        specs = faults.validate_active_faults()
        assert [spec.kind for spec in specs] == ["raise", "disconnect"]

    def test_bad_env_spec_raises_naming_the_token(self, monkeypatch):
        monkeypatch.setenv(ENV_VAR, "raise:1,bogus:2")
        with pytest.raises(FaultSpecError, match="bogus"):
            faults.validate_active_faults()

    def test_supervise_validates_env_before_any_work(self, monkeypatch):
        # The supervised runtime fails fast on a typo'd spec string
        # instead of surfacing it mid-sweep inside a worker.
        from repro.runtime.supervision import supervise

        monkeypatch.setenv(ENV_VAR, "raise:notanumber")
        ran = []

        def task(value):
            ran.append(value)
            return value

        with pytest.raises(FaultSpecError):
            list(supervise(task, [1, 2], policy="retry", retries=1))
        assert ran == []
