"""The shared-memory buffer layer (repro.runtime.shm).

Covers the pickle-5 payload path (inline vs segment, consumer-side
unlink), the shared read-only stack path (create/attach cache/evict),
orphan sweeping by kind, the ``REPRO_SHM=0`` opt-out, and the backend
integration that motivated the module: large array results crossing
forked/persistent pools without pickling their pixel data, and the
persistent-pool stale-stack regression (a warm worker forked during
job 1 must not serve job 1's images to job 2).
"""

import numpy as np
import pytest

from repro.runtime import backends, shm
from repro.runtime.executor import fork_available, map_tasks
from repro.runtime.shm import (
    ShmPayload,
    ShmUnavailable,
    attach_stack,
    create_stack,
    detach_stacks,
    dump,
    is_payload,
    list_segments,
    load,
    maybe_load,
    sweep_orphans,
)

needs_fork = pytest.mark.skipif(
    not fork_available(), reason="fork start method required"
)
needs_shm = pytest.mark.skipif(
    not shm.enabled(), reason="/dev/shm shared memory required"
)


@pytest.fixture(autouse=True)
def _clean_shm(monkeypatch):
    monkeypatch.delenv(shm.ENV_VAR, raising=False)
    monkeypatch.delenv(backends.ENV_VAR, raising=False)
    yield
    detach_stacks()
    sweep_orphans(prefix=shm.run_prefix())
    backends.shutdown_backends()


class TestPayloads:
    def test_small_values_ship_inline(self):
        payload = dump({"cell": 3, "value": 4.5})
        assert is_payload(payload)
        assert payload.segment is None
        assert load(payload) == {"cell": 3, "value": 4.5}
        assert list_segments() == []

    def test_small_arrays_stay_below_segment_threshold(self):
        array = np.arange(16, dtype=np.float64)
        payload = dump(array)
        assert payload.segment is None  # 128 B of buffers: inline
        np.testing.assert_array_equal(load(payload), array)

    @needs_shm
    def test_large_arrays_ride_a_segment(self):
        array = np.arange(64 * 1024, dtype=np.float64).reshape(256, 256)
        payload = dump(array)
        assert payload.segment is not None
        assert payload.segment in list_segments()
        # The structural pickle is tiny: the 512 KiB of pixels are
        # out-of-band, not inside pickle_data.
        assert len(payload.pickle_data) < 4096
        np.testing.assert_array_equal(load(payload), array)

    @needs_shm
    def test_load_unlinks_by_default(self):
        payload = dump(np.zeros(64 * 1024))
        assert payload.segment in list_segments()
        load(payload)
        assert payload.segment not in list_segments()

    @needs_shm
    def test_load_can_keep_the_segment(self):
        payload = dump(np.ones(64 * 1024))
        first = load(payload, unlink=False)
        second = load(payload)  # still present; now consumed
        np.testing.assert_array_equal(first, second)
        assert payload.segment not in list_segments()

    @needs_shm
    def test_min_bytes_threshold_is_respected(self):
        array = np.arange(64, dtype=np.float64)  # 512 B of buffers
        payload = dump(array, min_bytes=256)
        assert payload.segment is not None
        np.testing.assert_array_equal(load(payload), array)

    @needs_shm
    def test_mixed_structures_round_trip(self):
        value = {
            "images": np.random.default_rng(7).random((8, 64, 64)),
            "labels": list(range(8)),
            "meta": {"codec": "jpeg", "quality": 60},
        }
        restored = load(dump(value))
        np.testing.assert_array_equal(restored["images"], value["images"])
        assert restored["labels"] == value["labels"]
        assert restored["meta"] == value["meta"]

    def test_maybe_load_passes_plain_values_through(self):
        assert maybe_load(41) == 41
        array = np.arange(3)
        assert maybe_load(array) is array

    def test_disabled_via_env_ships_inline(self, monkeypatch):
        monkeypatch.setenv(shm.ENV_VAR, "0")
        assert not shm.enabled()
        payload = dump(np.zeros(1024 * 1024))
        assert payload.segment is None
        assert payload.inline is not None

    def test_missing_segment_surfaces_as_error(self):
        payload = ShmPayload(b"", segment=f"{shm.run_prefix()}-r-gone",
                             lengths=[8])
        with pytest.raises(FileNotFoundError):
            load(payload)


@needs_shm
class TestSharedStacks:
    def test_create_attach_round_trip(self):
        images = np.random.default_rng(3).random((4, 16, 16))
        stack = create_stack(images)
        try:
            attached = attach_stack(stack.handle)
            np.testing.assert_array_equal(attached, images)
            assert not attached.flags.writeable
        finally:
            detach_stacks()
            stack.close()
        assert stack.handle.name not in list_segments()

    def test_attach_is_cached_per_process(self):
        stack = create_stack(np.arange(12.0).reshape(3, 4))
        try:
            first = attach_stack(stack.handle)
            second = attach_stack(stack.handle)
            assert first is second
        finally:
            detach_stacks()
            stack.close()

    def test_new_attach_evicts_the_previous_stack(self):
        first = create_stack(np.zeros((2, 2)))
        second = create_stack(np.ones((2, 2)))
        try:
            attach_stack(first.handle)
            attach_stack(second.handle)
            assert list(shm._ATTACHED) == [second.handle.name]
        finally:
            detach_stacks()
            first.close()
            second.close()

    def test_non_contiguous_input_is_copied(self):
        base = np.arange(32.0).reshape(4, 8)
        stack = create_stack(base[:, ::2])
        try:
            np.testing.assert_array_equal(
                attach_stack(stack.handle), base[:, ::2]
            )
        finally:
            detach_stacks()
            stack.close()

    def test_disabled_env_raises(self, monkeypatch):
        monkeypatch.setenv(shm.ENV_VAR, "0")
        with pytest.raises(ShmUnavailable):
            create_stack(np.zeros(4))


class TestSweeping:
    @needs_shm
    def test_sweep_removes_result_segments_only(self):
        orphan = dump(np.zeros(64 * 1024))  # never consumed: an orphan
        stack = create_stack(np.zeros((4, 4)))
        try:
            removed = sweep_orphans()
            assert orphan.segment in removed
            # The parent-owned stack survives the sweep: its creator's
            # ``finally`` owns cleanup, not the backend's close().
            assert stack.handle.name in list_segments()
        finally:
            stack.close()

    @needs_shm
    def test_prefix_override_scopes_the_sweep(self, monkeypatch):
        monkeypatch.setenv(shm.PREFIX_ENV_VAR, "repro-shm-testrun")
        assert shm.run_prefix() == "repro-shm-testrun"
        payload = dump(np.zeros(64 * 1024))
        assert payload.segment.startswith("repro-shm-testrun-r-")
        assert sweep_orphans() == [payload.segment]

    def test_sweep_is_quiet_with_nothing_to_do(self):
        assert sweep_orphans(prefix="repro-shm-no-such-run-") == []


def _stack_mean(task):
    """Worker body: attach the shared stack and reduce one shard."""
    handle, start, stop = task
    return float(attach_stack(handle)[start:stop].sum())


def _big_result(scale):
    """Worker body: a result large enough to take the segment path."""
    return np.full((128, 128), float(scale))


@needs_fork
@needs_shm
class TestBackendIntegration:
    @pytest.mark.parametrize("backend", ["forked", "persistent"])
    def test_large_results_cross_the_pool(self, backend):
        results = map_tasks(
            _big_result, [1, 2, 3, 4], workers=2, backend=backend
        )
        for scale, array in zip([1, 2, 3, 4], results):
            np.testing.assert_array_equal(array, np.full((128, 128), scale))
        backends.shutdown_backends()
        assert list_segments(f"{shm.run_prefix()}-r-") == []

    @pytest.mark.parametrize("backend", ["forked", "persistent"])
    def test_supervised_large_results(self, backend):
        results = map_tasks(
            _big_result, [5, 6, 7], workers=2, backend=backend,
            policy="retry", retries=1,
        )
        np.testing.assert_array_equal(results[2], np.full((128, 128), 7.0))
        backends.shutdown_backends()
        assert list_segments(f"{shm.run_prefix()}-r-") == []

    def test_shared_stack_tasks_on_a_warm_pool(self):
        """The stale-inherited-stack regression, distilled.

        A persistent pool forked during job 1 must compute job 2 from
        job 2's stack — shipped by handle, not inherited at fork time.
        """
        first = np.full((6, 32, 32), 1.0)
        second = np.full((6, 32, 32), 2.0)
        for images, expected in ((first, 32 * 32), (second, 2 * 32 * 32)):
            stack = create_stack(images)
            try:
                tasks = [(stack.handle, i, i + 1) for i in range(6)]
                sums = map_tasks(
                    _stack_mean, tasks, workers=2, backend="persistent"
                )
                assert sums == [pytest.approx(expected)] * 6
            finally:
                stack.close()
        backends.shutdown_backends()
        assert list_segments() == []

    def test_disabled_env_still_computes(self, monkeypatch):
        monkeypatch.setenv(shm.ENV_VAR, "0")
        results = map_tasks(_big_result, [9], workers=2, backend="forked")
        np.testing.assert_array_equal(results[0], np.full((128, 128), 9.0))
        assert list_segments() == []
