"""The supervised runtime: envelopes, retries, timeouts, crash recovery."""

import pytest

from repro.runtime import faults, supervision
from repro.runtime.executor import (
    CACHE_MISS,
    fork_available,
    imap_tasks,
    map_tasks,
    map_tasks_resumable,
)
from repro.runtime.faults import InjectedFault
from repro.runtime.supervision import (
    FAILURE_CRASH,
    FAILURE_EXCEPTION,
    FAILURE_TIMEOUT,
    TaskError,
    TaskFailure,
    supervise,
    supervised_imap,
    supervised_map,
)

needs_fork = pytest.mark.skipif(
    not fork_available(), reason="fork start method required"
)

#: Tight-but-safe watchdog budget for the hang tests: the injected hang
#: sleeps far longer (10 s), so the only way a test passes quickly is the
#: watchdog actually killing the worker.
TIMEOUT = 0.75
HANG = "10"


def _square(value):
    return value * value


def _raise_on_negative(value):
    if value < 0:
        raise ValueError(f"negative input {value}")
    return value * value


@pytest.fixture(autouse=True)
def _no_leaked_faults(monkeypatch):
    monkeypatch.delenv(faults.ENV_VAR, raising=False)
    faults.clear_faults()
    yield
    faults.clear_faults()


class TestValidation:
    def test_unknown_policy_rejected(self):
        with pytest.raises(ValueError, match="policy"):
            list(supervise(_square, [1], policy="nope"))

    def test_negative_retries_rejected(self):
        with pytest.raises(ValueError, match="retries"):
            list(supervise(_square, [1], retries=-1))

    def test_non_positive_timeout_rejected(self):
        with pytest.raises(ValueError, match="task_timeout"):
            list(supervise(_square, [1], task_timeout=0))

    def test_negative_backoff_rejected(self):
        with pytest.raises(ValueError, match="backoff"):
            list(supervise(_square, [1], backoff=-0.1))

    def test_empty_tasks_yield_nothing(self):
        assert list(supervise(_square, [])) == []
        assert supervised_map(_square, []) == []


class TestFailureEnvelope:
    def test_describe_names_task_kind_and_error(self):
        failure = TaskFailure(
            index=4, kind=FAILURE_EXCEPTION, error_type="ValueError",
            message="boom", attempts=3,
        )
        text = failure.describe()
        assert "task 4" in text and "3 attempt(s)" in text
        assert "ValueError" in text and "boom" in text

    def test_task_error_carries_failure_and_cause(self):
        original = ValueError("boom")
        failure = supervision._failure_from_exception(2, 1, original)
        assert failure.error is not None  # picklable exceptions ride along
        with pytest.raises(TaskError) as exc_info:
            supervision._raise_task_error(failure)
        assert exc_info.value.failure is failure
        assert isinstance(exc_info.value.__cause__, ValueError)

    def test_unpicklable_exception_is_dropped_but_described(self):
        error = ValueError("boom")
        error.payload = lambda: None  # closures don't pickle
        failure = supervision._failure_from_exception(0, 1, error)
        assert failure.error is None
        assert failure.error_type == "ValueError"
        assert failure.message == "boom"
        assert "ValueError" in failure.traceback


@needs_fork
class TestPoolParity:
    def test_matches_plain_map(self):
        tasks = list(range(8))
        expected = [_square(t) for t in tasks]
        for workers in (1, 2):
            for policy in ("fail-fast", "retry", "collect"):
                assert supervised_map(
                    _square, tasks, workers=workers, policy=policy
                ) == expected

    def test_imap_preserves_task_order(self):
        tasks = list(range(10))
        assert list(
            supervised_imap(_square, tasks, workers=2, window=3)
        ) == [_square(t) for t in tasks]

    def test_on_result_fires_in_task_order(self):
        seen = []
        supervised_map(
            _square, list(range(8)), workers=2,
            on_result=lambda index, value: seen.append((index, value)),
        )
        assert seen == [(i, i * i) for i in range(8)]


@needs_fork
class TestRetries:
    def test_transient_fault_recovers_identically(self):
        with faults.injected("raise:3:1"):
            out = supervised_map(
                _square, list(range(6)), workers=2, policy="retry", retries=2
            )
        assert out == [_square(t) for t in range(6)]

    def test_fail_fast_never_retries(self):
        with faults.injected("raise:3:1"):
            with pytest.raises(TaskError) as exc_info:
                supervised_map(
                    _square, list(range(6)), workers=2,
                    policy="fail-fast", retries=5,
                )
        failure = exc_info.value.failure
        assert failure.index == 3
        assert failure.attempts == 1
        assert failure.kind == FAILURE_EXCEPTION
        assert isinstance(exc_info.value.__cause__, InjectedFault)

    def test_retry_exhaustion_raises_with_attempt_count(self):
        with faults.injected("raise:2:0"):  # permanent
            with pytest.raises(TaskError) as exc_info:
                supervised_map(
                    _square, list(range(4)), workers=2,
                    policy="retry", retries=1,
                )
        assert exc_info.value.failure.attempts == 2

    def test_collect_yields_envelope_in_failed_slot(self):
        with faults.injected("raise:2:0"):
            out = supervised_map(
                _square, list(range(5)), workers=2,
                policy="collect", retries=1,
            )
        assert [out[i] for i in (0, 1, 3, 4)] == [0, 1, 9, 16]
        failure = out[2]
        assert isinstance(failure, TaskFailure)
        assert failure.index == 2
        assert failure.attempts == 2
        assert failure.error_type == "InjectedFault"

    def test_on_result_skips_failures(self):
        seen = []
        with faults.injected("raise:1:0"):
            supervised_map(
                _square, list(range(4)), workers=2,
                policy="collect", retries=0,
                on_result=lambda index, value: seen.append(index),
            )
        assert seen == [0, 2, 3]


@needs_fork
class TestCrashRecovery:
    def test_worker_crash_recovers_under_retry(self):
        with faults.injected("exit:3:1"):
            out = supervised_map(
                _square, list(range(6)), workers=2, policy="retry", retries=2
            )
        assert out == [_square(t) for t in range(6)]

    def test_worker_crash_fail_fast_names_task(self):
        with faults.injected("exit:0:1"):
            with pytest.raises(TaskError) as exc_info:
                supervised_map(
                    _square, list(range(4)), workers=2, policy="fail-fast"
                )
        failure = exc_info.value.failure
        assert failure.kind == FAILURE_CRASH
        assert failure.index == 0
        assert str(faults.EXIT_CODE) in failure.message

    def test_permanent_crash_collected(self):
        with faults.injected("exit:1:0"):
            out = supervised_map(
                _square, list(range(4)), workers=2,
                policy="collect", retries=1,
            )
        assert isinstance(out[1], TaskFailure)
        assert out[1].kind == FAILURE_CRASH
        assert out[1].attempts == 2
        assert [out[i] for i in (0, 2, 3)] == [0, 4, 9]

    def test_runtime_survives_for_subsequent_maps(self):
        with faults.injected("exit:2:0"):
            with pytest.raises(TaskError):
                supervised_map(
                    _square, list(range(4)), workers=2,
                    policy="retry", retries=0,
                )
        # The broken pool must not wedge the next (plain or supervised) map.
        assert map_tasks(_square, range(4), workers=2) == [0, 1, 4, 9]
        assert supervised_map(_square, list(range(4)), workers=2) == [0, 1, 4, 9]


@needs_fork
class TestTimeouts:
    def test_hung_task_recovers_under_retry(self):
        with faults.injected(f"hang:2:1:{HANG}"):
            out = supervised_map(
                _square, list(range(4)), workers=2,
                policy="retry", retries=1, task_timeout=TIMEOUT,
            )
        assert out == [_square(t) for t in range(4)]

    def test_hung_task_fail_fast_is_a_timeout_failure(self):
        with faults.injected(f"hang:1:1:{HANG}"):
            with pytest.raises(TaskError) as exc_info:
                supervised_map(
                    _square, list(range(3)), workers=2,
                    policy="fail-fast", task_timeout=TIMEOUT,
                )
        failure = exc_info.value.failure
        assert failure.kind == FAILURE_TIMEOUT
        assert failure.index == 1
        assert "timeout" in failure.message

    def test_permanent_hang_collected(self):
        with faults.injected(f"hang:0:0:{HANG}"):
            out = supervised_map(
                _square, list(range(3)), workers=2,
                policy="collect", retries=1, task_timeout=TIMEOUT,
            )
        assert isinstance(out[0], TaskFailure)
        assert out[0].kind == FAILURE_TIMEOUT
        assert out[0].attempts == 2
        assert out[1:] == [1, 4]


class TestSerialFallback:
    @pytest.fixture(autouse=True)
    def _no_fork(self, monkeypatch):
        monkeypatch.setattr(supervision, "fork_available", lambda: False)

    def test_retries_and_results_without_fork(self):
        with faults.injected("raise:2:1"):
            out = supervised_map(
                _square, list(range(4)), workers=2, policy="retry", retries=1
            )
        assert out == [0, 1, 4, 9]

    def test_collect_without_fork(self):
        with faults.injected("raise:1:0"):
            out = supervised_map(
                _square, list(range(3)), workers=2,
                policy="collect", retries=0,
            )
        assert isinstance(out[1], TaskFailure)
        assert out[1].error_type == "InjectedFault"

    def test_fail_fast_without_fork(self):
        with faults.injected("raise:0:1"):
            with pytest.raises(TaskError):
                supervised_map(_square, [1, 2], policy="fail-fast")


@needs_fork
class TestExecutorIntegration:
    def test_map_tasks_policy_engages_supervision(self):
        with faults.injected("raise:1:1"):
            out = map_tasks(
                _square, range(4), workers=2, policy="retry", retries=1
            )
        assert out == [0, 1, 4, 9]

    def test_map_tasks_legacy_path_ignores_faults(self):
        # Without any supervision knob the legacy fast path runs and the
        # harness never fires: installed faults must not perturb it.
        with faults.injected("raise:1:0"):
            assert map_tasks(_square, range(4), workers=2) == [0, 1, 4, 9]

    def test_imap_tasks_policy_engages_supervision(self):
        with faults.injected("raise:2:1"):
            out = list(imap_tasks(
                _square, range(5), workers=2, policy="retry", retries=1
            ))
        assert out == [0, 1, 4, 9, 16]

    def test_timeout_alone_engages_supervision(self):
        with faults.injected(f"hang:1:1:{HANG}"):
            with pytest.raises(TaskError) as exc_info:
                map_tasks(
                    _square, range(3), workers=2, task_timeout=TIMEOUT
                )
        assert exc_info.value.failure.kind == FAILURE_TIMEOUT

    def test_resumable_collect_rewrites_global_indices(self):
        # Global tasks 1 and 3 fail; 2 is cached, so supervision sees the
        # subset [0, 1, 3] with local failure indices 1 and 2.  The
        # returned envelopes must name the *global* positions.
        tasks = [1, -1, 2, -1]
        cached = [CACHE_MISS, CACHE_MISS, 99, CACHE_MISS]
        persisted = []
        out = map_tasks_resumable(
            _raise_on_negative, tasks, cached, workers=2,
            on_result=lambda index, value: persisted.append(index),
            policy="collect", retries=0,
        )
        assert out[0] == 1 and out[2] == 99
        assert isinstance(out[1], TaskFailure) and out[1].index == 1
        assert isinstance(out[3], TaskFailure) and out[3].index == 3
        assert persisted == [0]  # failures and cache hits never persist

    def test_resumable_raised_error_rewrites_global_index(self):
        tasks = [1, 2, -1, 3]
        cached = [1, CACHE_MISS, CACHE_MISS, CACHE_MISS]
        with pytest.raises(TaskError) as exc_info:
            map_tasks_resumable(
                _raise_on_negative, tasks, cached, workers=2,
                policy="retry", retries=0,
            )
        assert exc_info.value.failure.index == 2  # subset-local was 1
        assert "task 2" in str(exc_info.value)


class TestBackoffDelay:
    def test_zero_backoff_means_immediate_retry(self):
        assert supervision._backoff_delay(0.0, 1) == 0.0
        assert supervision._backoff_delay(0.0, 5) == 0.0

    def test_deterministic_doubling(self):
        delays = [supervision._backoff_delay(0.1, a) for a in (1, 2, 3)]
        assert delays == [0.1, 0.2, 0.4]

    @needs_fork
    def test_zero_backoff_recovers_without_sleeping(self):
        import time

        started = time.monotonic()
        with faults.injected("raise:1:1,raise:1:2"):
            out = supervised_map(
                _square, list(range(3)), workers=2,
                policy="retry", retries=2, backoff=0.0,
            )
        assert out == [0, 1, 4]
        # With backoff=0 the two retried attempts are re-submittable
        # immediately; a 2-second-per-retry wait would blow this budget.
        assert time.monotonic() - started < 5.0

    @needs_fork
    def test_positive_backoff_still_converges(self):
        with faults.injected("raise:1:1"):
            out = supervised_map(
                _square, list(range(3)), workers=2,
                policy="retry", retries=1, backoff=0.05,
            )
        assert out == [0, 1, 4]


class TestEnforceDeadlines:
    def test_kills_only_past_deadline_and_only_once(self):
        killed = []
        running = {0: 100.0, 1: 104.0}
        timed_out = set()

        def kill(index):
            killed.append(index)
            return True

        supervision._enforce_deadlines(
            running, timed_out, task_timeout=2.0, now=103.0, kill=kill
        )
        assert killed == [0]  # task 1 is only 0s in; task 0 is 3s in
        assert timed_out == {0}
        supervision._enforce_deadlines(
            running, timed_out, task_timeout=2.0, now=104.0, kill=kill
        )
        assert killed == [0]  # no repeat kill while the event is in flight

    def test_failed_kill_retries_next_tick(self):
        attempts = []

        def kill(index):
            attempts.append(index)
            return len(attempts) > 1  # first attempt misses

        timed_out = set()
        supervision._enforce_deadlines(
            {5: 0.0}, timed_out, task_timeout=1.0, now=10.0, kill=kill
        )
        assert timed_out == set()  # not marked: the kill was not issued
        supervision._enforce_deadlines(
            {5: 0.0}, timed_out, task_timeout=1.0, now=10.0, kill=kill
        )
        assert attempts == [5, 5]
        assert timed_out == {5}


@needs_fork
class TestTimeoutEdges:
    def test_timeout_shorter_than_poll_interval_still_enforced(self):
        # The supervisor polls in ~0.25 s slices; a 0.1 s deadline must
        # still kill the hang rather than quantise away.
        with faults.injected(f"hang:0:1:{HANG}"):
            out = supervised_map(
                _square, [7], workers=2,
                policy="retry", retries=1, task_timeout=0.1,
            )
        assert out == [49]

    def test_timeout_on_final_attempt_raises_timeout_error(self):
        # Attempt 1 hangs AND the retry hangs: the last attempt's
        # timeout must surface as a FAILURE_TIMEOUT TaskError, not hang
        # the supervisor or misreport as a crash.
        with faults.injected(f"hang:0:1:{HANG},hang:0:2:{HANG}"):
            with pytest.raises(TaskError) as exc_info:
                supervised_map(
                    _square, [3], workers=2,
                    policy="retry", retries=1, task_timeout=TIMEOUT,
                )
        failure = exc_info.value.failure
        assert failure.kind == FAILURE_TIMEOUT
        assert failure.attempts == 2
        assert "timeout" in failure.message
