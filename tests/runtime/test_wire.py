"""The length-prefixed wire protocol of the socket-worker tier."""

import socket
import struct

import numpy as np
import pytest

from repro.runtime import wire
from repro.runtime.wire import (
    MAGIC,
    MAX_PART_BYTES,
    PROTOCOL_VERSION,
    WireError,
    dump_payload,
    encode_frame,
    format_address,
    load_payload,
    parse_address,
    recv_frame,
    send_frame,
)


@pytest.fixture()
def pair():
    left, right = socket.socketpair()
    yield left, right
    left.close()
    right.close()


class TestFrames:
    def test_round_trip_header_only(self, pair):
        left, right = pair
        send_frame(left, wire.heartbeat("w1"))
        header, blob = recv_frame(right)
        assert header == {"type": "heartbeat", "worker_id": "w1"}
        assert blob == b""

    def test_round_trip_with_blob(self, pair):
        left, right = pair
        payload, meta = dump_payload({"cell": [1, 2, 3], "value": 4.5})
        assert meta is None
        send_frame(left, wire.result_ok(7, 3, 1, payload=meta), payload)
        header, blob = recv_frame(right)
        assert header["lease_id"] == 7
        assert header["status"] == "ok"
        assert load_payload(blob, header.get("payload")) == {
            "cell": [1, 2, 3], "value": 4.5
        }

    def test_round_trip_with_ndarray_blob(self, pair):
        """A bare array ships as raw bytes with dtype/shape in the header."""
        left, right = pair
        array = np.arange(24, dtype=np.int32).reshape(2, 3, 4)
        payload, meta = dump_payload(array)
        assert meta == {"enc": "ndarray", "dtype": "<i4", "shape": [2, 3, 4]}
        assert payload == array.tobytes()  # raw bytes, not a pickle
        send_frame(left, wire.result_ok(9, 0, 1, payload=meta), payload)
        header, blob = recv_frame(right)
        value = load_payload(blob, header.get("payload"))
        assert value.dtype == np.int32 and value.shape == (2, 3, 4)
        np.testing.assert_array_equal(value, array)
        assert value.flags.writeable  # consumers may mutate their copy

    def test_fortran_and_sliced_arrays_round_trip(self):
        array = np.asfortranarray(np.arange(12, dtype=np.float64).reshape(3, 4))
        blob, meta = dump_payload(array[::2])
        np.testing.assert_array_equal(
            load_payload(blob, meta), array[::2]
        )

    def test_object_arrays_fall_back_to_pickle(self):
        array = np.array([{"a": 1}, None], dtype=object)
        blob, meta = dump_payload(array)
        assert meta is None
        value = load_payload(blob, meta)
        assert value[0] == {"a": 1} and value[1] is None

    def test_unknown_payload_encoding_is_rejected(self):
        with pytest.raises(WireError):
            load_payload(b"", {"enc": "zlib"})

    def test_back_to_back_frames_stay_delimited(self, pair):
        left, right = pair
        send_frame(left, wire.heartbeat("a"), b"xx")
        send_frame(left, wire.heartbeat("b"))
        first, first_blob = recv_frame(right)
        second, second_blob = recv_frame(right)
        assert (first["worker_id"], first_blob) == ("a", b"xx")
        assert (second["worker_id"], second_blob) == ("b", b"")

    def test_bad_magic_rejected(self, pair):
        left, right = pair
        frame = encode_frame(wire.heartbeat("w"))
        left.sendall(b"XX" + frame[2:])
        with pytest.raises(WireError, match="magic"):
            recv_frame(right)

    def test_oversized_length_prefix_rejected(self, pair):
        left, right = pair
        left.sendall(
            struct.Struct("!2sII").pack(MAGIC, MAX_PART_BYTES + 1, 0)
        )
        with pytest.raises(WireError, match="out of range"):
            recv_frame(right)

    def test_eof_mid_frame_is_wire_error(self, pair):
        left, right = pair
        frame = encode_frame(wire.heartbeat("w"))
        left.sendall(frame[: len(frame) - 3])
        left.close()
        with pytest.raises(WireError, match="closed"):
            recv_frame(right)

    def test_non_json_header_rejected(self, pair):
        left, right = pair
        junk = b"\xff\xfe not json"
        left.sendall(struct.Struct("!2sII").pack(MAGIC, len(junk), 0) + junk)
        with pytest.raises(WireError, match="JSON"):
            recv_frame(right)

    def test_header_without_type_rejected(self, pair):
        left, right = pair
        body = b'{"worker_id": "w"}'
        left.sendall(struct.Struct("!2sII").pack(MAGIC, len(body), 0) + body)
        with pytest.raises(WireError, match="type"):
            recv_frame(right)


class TestMessages:
    def test_hello_carries_protocol_version(self):
        header = wire.hello("worker-1", 123)
        assert header["version"] == PROTOCOL_VERSION
        assert header["pid"] == 123

    def test_result_failure_embeds_envelope(self):
        envelope = {"index": 2, "kind": "exception"}
        header = wire.result_failure(9, 2, 1, envelope)
        assert header["status"] == "failure"
        assert header["failure"] == envelope


class TestAddresses:
    def test_parse_round_trip(self):
        assert parse_address("127.0.0.1:7463") == ("127.0.0.1", 7463)
        assert format_address(("127.0.0.1", 7463)) == "127.0.0.1:7463"

    @pytest.mark.parametrize(
        "text", ["7463", ":7463", "host:", "host:port", "host:70000"]
    )
    def test_bad_addresses_rejected(self, text):
        with pytest.raises(ValueError):
            parse_address(text)
