"""The ``repro bench`` subcommand: recording, gating, exit statuses."""

import json

import pytest

from repro.bench import EXIT_BENCH_REGRESSION, check_regressions
from repro.cli import build_parser, main


def _report(min_seconds, name="test_predict"):
    """A minimal pytest-benchmark JSON report with one benchmark."""
    return {
        "datetime": "2026-08-07T00:00:00",
        "machine_info": {"node": "test", "python_version": "3.11"},
        "benchmarks": [
            {
                "name": name,
                "stats": {
                    "mean": min_seconds * 1.1,
                    "min": min_seconds,
                    "stddev": min_seconds * 0.01,
                    "rounds": 5,
                },
                "extra_info": {"speedup": 2.0},
            }
        ],
    }


def _write_report(tmp_path, min_seconds, name="test_predict"):
    path = tmp_path / "bench.json"
    path.write_text(json.dumps(_report(min_seconds, name)))
    return path


class TestArgumentParsing:
    def test_bench_defaults(self):
        arguments = build_parser().parse_args(["bench"])
        assert arguments.command == "bench"
        assert arguments.from_json is None
        assert arguments.trajectory == "BENCH_PR3.json"
        assert arguments.threshold == 0.2
        assert not arguments.check and not arguments.no_record

    def test_bench_all_flags(self):
        arguments = build_parser().parse_args(
            ["bench", "--from-json", "report.json", "--label", "PR9",
             "--trajectory", "traj.json", "--check", "--threshold", "0.5",
             "--no-record"]
        )
        assert arguments.from_json == "report.json"
        assert arguments.label == "PR9"
        assert arguments.trajectory == "traj.json"
        assert arguments.check
        assert arguments.threshold == 0.5
        assert arguments.no_record

    def test_engine_flags_parse_on_run(self):
        arguments = build_parser().parse_args(
            ["run", "fig5", "--engine", "dynamic",
             "--storage-dtype", "float16", "--blas-threads", "2"]
        )
        assert arguments.engine == "dynamic"
        assert arguments.storage_dtype == "float16"
        assert arguments.blas_threads == 2

    def test_engine_flags_default_to_none(self):
        arguments = build_parser().parse_args(["run", "fig5"])
        assert arguments.engine is None
        assert arguments.storage_dtype is None
        assert arguments.blas_threads is None

    def test_unknown_engine_rejected(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["run", "fig5", "--engine", "magic"])


class TestRecording:
    def test_from_json_appends_entry(self, tmp_path, capsys):
        report = _write_report(tmp_path, 0.010)
        trajectory = tmp_path / "traj.json"
        status = main(
            ["bench", "--from-json", str(report), "--label", "first",
             "--trajectory", str(trajectory)]
        )
        assert status == 0
        history = json.loads(trajectory.read_text())
        assert len(history) == 1
        assert history[0]["label"] == "first"
        assert history[0]["benchmarks"]["test_predict"]["min_seconds"] == 0.010
        assert "recorded" in capsys.readouterr().out

    def test_missing_report_exits_2(self, tmp_path, capsys):
        status = main(
            ["bench", "--from-json", str(tmp_path / "nope.json"),
             "--trajectory", str(tmp_path / "traj.json")]
        )
        assert status == 2
        assert "not found" in capsys.readouterr().err

    def test_malformed_report_exits_2(self, tmp_path, capsys):
        report = tmp_path / "bench.json"
        report.write_text("not json {")
        status = main(
            ["bench", "--from-json", str(report),
             "--trajectory", str(tmp_path / "traj.json")]
        )
        assert status == 2
        assert "not valid JSON" in capsys.readouterr().err

    def test_no_record_leaves_trajectory_untouched(self, tmp_path):
        report = _write_report(tmp_path, 0.010)
        trajectory = tmp_path / "traj.json"
        status = main(
            ["bench", "--from-json", str(report), "--no-record",
             "--trajectory", str(trajectory)]
        )
        assert status == 0
        assert not trajectory.exists()


class TestCheck:
    def _record(self, tmp_path, min_seconds, label, extra=()):
        report = _write_report(tmp_path, min_seconds)
        return main(
            ["bench", "--from-json", str(report), "--label", label,
             "--trajectory", str(tmp_path / "traj.json"), *extra]
        )

    def test_first_entry_passes_check(self, tmp_path, capsys):
        status = self._record(tmp_path, 0.010, "first", extra=["--check"])
        assert status == 0
        assert "no prior entry" in capsys.readouterr().out

    def test_no_regression_passes(self, tmp_path, capsys):
        assert self._record(tmp_path, 0.010, "first") == 0
        status = self._record(tmp_path, 0.011, "second", extra=["--check"])
        assert status == 0
        assert "no regressions" in capsys.readouterr().out

    def test_regression_exits_4(self, tmp_path, capsys):
        assert self._record(tmp_path, 0.010, "first") == 0
        status = self._record(tmp_path, 0.020, "slower", extra=["--check"])
        assert status == EXIT_BENCH_REGRESSION
        err = capsys.readouterr().err
        assert "regression" in err and "test_predict" in err

    def test_threshold_is_respected(self, tmp_path):
        assert self._record(tmp_path, 0.010, "first") == 0
        status = self._record(
            tmp_path, 0.020, "slower",
            extra=["--check", "--threshold", "1.5"],
        )
        assert status == 0

    def test_check_with_no_record_compares_latest(self, tmp_path):
        assert self._record(tmp_path, 0.010, "first") == 0
        status = self._record(
            tmp_path, 0.020, "probe", extra=["--check", "--no-record"]
        )
        assert status == EXIT_BENCH_REGRESSION
        history = json.loads((tmp_path / "traj.json").read_text())
        assert [entry["label"] for entry in history] == ["first"]

    def test_different_cpu_count_not_compared(self, tmp_path, capsys):
        trajectory = tmp_path / "traj.json"
        report = _write_report(tmp_path, 0.010)
        assert main(
            ["bench", "--from-json", str(report), "--label", "other-box",
             "--trajectory", str(trajectory)]
        ) == 0
        history = json.loads(trajectory.read_text())
        history[0]["cpu_count"] = history[0]["cpu_count"] + 64
        trajectory.write_text(json.dumps(history))
        status = self._record(tmp_path, 0.050, "this-box", extra=["--check"])
        assert status == 0
        assert "no prior entry" in capsys.readouterr().out


class TestCheckRegressionsUnit:
    def test_only_shared_benchmarks_compared(self):
        entry = {"benchmarks": {"a": {"min_seconds": 2.0},
                                "new": {"min_seconds": 9.0}}}
        baseline = {"benchmarks": {"a": {"min_seconds": 1.0},
                                   "gone": {"min_seconds": 0.1}}}
        regressions = check_regressions(entry, baseline, threshold=0.2)
        assert [r[0] for r in regressions] == ["a"]
        name, old, new, slowdown = regressions[0]
        assert (old, new) == (1.0, 2.0)
        assert slowdown == pytest.approx(1.0)

    def test_missing_stats_skipped(self):
        entry = {"benchmarks": {"a": {"min_seconds": None}}}
        baseline = {"benchmarks": {"a": {"min_seconds": 1.0}}}
        assert check_regressions(entry, baseline, threshold=0.2) == []

    def test_speedup_is_not_a_regression(self):
        entry = {"benchmarks": {"a": {"min_seconds": 0.5}}}
        baseline = {"benchmarks": {"a": {"min_seconds": 1.0}}}
        assert check_regressions(entry, baseline, threshold=0.2) == []
