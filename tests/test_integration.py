"""End-to-end integration tests across the whole framework."""

import numpy as np
import pytest

from repro import DeepNJpeg, DeepNJpegConfig, generate_freqnet
from repro.core.baselines import JpegCompressor
from repro.data import FreqNetConfig, prepare_for_network, train_test_split
from repro.nn import Adam, Trainer, models


class TestPublicApi:
    def test_top_level_exports(self):
        import repro

        assert repro.__version__
        assert callable(repro.generate_freqnet)
        assert repro.DeepNJpeg is DeepNJpeg

    def test_quickstart_path(self, small_freqnet):
        """The README quickstart: fit, compress, inspect the ratio."""
        deepn = DeepNJpeg(DeepNJpegConfig(sampling_interval=2)).fit(small_freqnet)
        result = deepn.compress_dataset(small_freqnet)
        assert result.compression_ratio > 1.0
        assert np.isfinite(result.mean_psnr)


class TestEndToEndAccuracyPipeline:
    """The central claim at a micro scale: training and testing on
    DeepN-JPEG-compressed data matches the uncompressed pipeline while the
    compressed dataset is substantially smaller."""

    @pytest.fixture(scope="class")
    def pipeline_results(self):
        dataset = generate_freqnet(
            FreqNetConfig(images_per_class=14, image_size=32, seed=21)
        )
        train_set, test_set = train_test_split(dataset, 0.25, seed=1)
        deepn = DeepNJpeg(DeepNJpegConfig(sampling_interval=2)).fit(train_set)

        def train_and_eval(train_data, test_data):
            model = models.alexnet_mini(num_classes=dataset.num_classes, seed=0)
            trainer = Trainer(model, optimizer=Adam(0.002), batch_size=16, seed=0)
            trainer.fit(
                prepare_for_network(train_data.images), train_data.labels,
                epochs=12,
            )
            return trainer.evaluate(
                prepare_for_network(test_data.images), test_data.labels
            )

        original_train = JpegCompressor(100).compress_dataset(train_set)
        original_test = JpegCompressor(100).compress_dataset(test_set)
        deepn_train = deepn.compress_dataset(train_set)
        deepn_test = deepn.compress_dataset(test_set)
        return {
            "original_accuracy": train_and_eval(
                original_train.dataset, original_test.dataset
            ),
            "deepn_accuracy": train_and_eval(
                deepn_train.dataset, deepn_test.dataset
            ),
            "original_bytes": original_test.total_bytes,
            "deepn_bytes": deepn_test.total_bytes,
        }

    def test_original_pipeline_learns(self, pipeline_results):
        assert pipeline_results["original_accuracy"] >= 0.75

    def test_deepn_accuracy_close_to_original(self, pipeline_results):
        assert pipeline_results["deepn_accuracy"] >= (
            pipeline_results["original_accuracy"] - 0.13
        )

    def test_deepn_compresses_substantially(self, pipeline_results):
        assert pipeline_results["deepn_bytes"] < (
            0.65 * pipeline_results["original_bytes"]
        )


class TestModelsTrainOnFreqNet:
    @pytest.mark.parametrize("model_name", ["GoogLeNet", "ResNet-34"])
    def test_non_alexnet_families_learn_something(self, model_name, tiny_freqnet):
        train_set, test_set = train_test_split(tiny_freqnet, 0.25, seed=0)
        model = models.build_model(
            model_name, num_classes=tiny_freqnet.num_classes,
            input_shape=(1, 16, 16), seed=0,
        )
        trainer = Trainer(model, optimizer=Adam(0.003), batch_size=8, seed=0)
        history = trainer.fit(
            prepare_for_network(train_set.images), train_set.labels, epochs=3
        )
        assert history.train_loss[-1] < history.train_loss[0]
